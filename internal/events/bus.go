package events

import (
	"sync"
	"time"
)

// DefaultJournalSize is the bus journal ring capacity when BusConfig
// leaves it zero: enough recent history that a watcher polling every
// few hundred milliseconds never gaps on a healthy node.
const DefaultJournalSize = 1024

// BusConfig parameterizes a bus.
type BusConfig struct {
	// Node is stamped into every published event as the publisher.
	Node string
	// Now overrides the event clock (virtual-clock campaigns, tests);
	// nil means time.Now.
	Now func() time.Time
	// JournalSize bounds the cursor journal ring; 0 means
	// DefaultJournalSize.
	JournalSize int
	// FirstSeq is the first sequence number to assign; 0 means 1. A
	// flight recorder seeds this with its recovered high-water mark so
	// sequence numbers — and watcher cursors — stay monotone across a
	// node restart.
	FirstSeq uint64
}

// Bus is a bounded, non-blocking publisher. Publish stamps the event,
// appends it to the cursor journal, and offers it to every subscriber
// ring — all O(subscribers) bounded work under short mutexes; it never
// waits on a consumer. The zero value is not usable; call NewBus.
type Bus struct {
	node string
	now  func() time.Time

	mu        sync.Mutex
	next      uint64 // next sequence number to assign
	ring      []Event
	count     int // filled journal slots (≤ len(ring))
	published uint64
	subs      []*Subscription
	closed    bool
}

// NewBus builds a bus.
func NewBus(cfg BusConfig) *Bus {
	size := cfg.JournalSize
	if size <= 0 {
		size = DefaultJournalSize
	}
	first := cfg.FirstSeq
	if first == 0 {
		first = 1
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Bus{
		node: cfg.Node,
		now:  now,
		next: first,
		ring: make([]Event, size),
	}
}

// Node returns the publisher name stamped into events.
func (b *Bus) Node() string { return b.node }

// Publish stamps ev (Seq, Node, UnixNano), records it in the journal,
// and offers it to every subscriber without blocking. It returns the
// assigned sequence number, or 0 if the bus is closed. Safe for
// concurrent use from hot paths: the only waiting is on the bus mutex
// itself, which is never held across consumer work.
func (b *Bus) Publish(ev Event) uint64 {
	sanitize(&ev)
	ts := b.now().UnixNano()

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0
	}
	ev.Seq = b.next
	ev.Node = b.node
	ev.UnixNano = ts
	b.next++
	b.published++
	b.ring[int(ev.Seq)%len(b.ring)] = ev
	if b.count < len(b.ring) {
		b.count++
	}
	// Fan out under the bus lock so every subscriber sees the same
	// total order. Each push is constant-time ring bookkeeping — the
	// lock is never held across consumer work.
	for _, s := range b.subs {
		s.push(ev)
	}
	b.mu.Unlock()
	return ev.Seq
}

// Subscribe registers a consumer with its own fixed-size ring. A
// subscriber that falls behind loses its oldest buffered events;
// Subscription.Stats reports exactly how many. capacity ≤ 0 defaults
// to DefaultJournalSize.
func (b *Bus) Subscribe(name string, capacity int) *Subscription {
	if capacity <= 0 {
		capacity = DefaultJournalSize
	}
	s := &Subscription{
		name:   name,
		bus:    b,
		buf:    make([]Event, capacity),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	if b.closed {
		s.closed = true
	} else {
		b.subs = append(b.subs, s)
	}
	b.mu.Unlock()
	return s
}

// unsubscribe detaches s; idempotent.
func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, cur := range b.subs {
		if cur == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// ReadSince serves the cursor journal: events with Seq ≥ cursor, at
// most max of them (max ≤ 0 means 256). next is the cursor to resume
// from; missed counts events that fell off the ring before the cursor
// could read them — the resume-token contract `node/events` exposes.
func (b *Bus) ReadSince(cursor uint64, max int) (evs []Event, next uint64, missed uint64) {
	if max <= 0 {
		max = 256
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	first := b.next - uint64(b.count) // oldest seq still in the ring
	if cursor < 1 {
		cursor = 1
	}
	if cursor < first {
		missed = first - cursor
		cursor = first
	}
	if cursor >= b.next {
		return nil, b.next, missed
	}
	n := int(b.next - cursor)
	if n > max {
		n = max
	}
	evs = make([]Event, n)
	for i := 0; i < n; i++ {
		evs[i] = b.ring[int(cursor+uint64(i))%len(b.ring)]
	}
	return evs, cursor + uint64(n), missed
}

// NextSeq returns the sequence number the next published event will
// receive — the cursor a watcher starts from to see only new events.
func (b *Bus) NextSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// SubscriberStats is one subscriber's delivery ledger.
type SubscriberStats struct {
	// Name identifies the subscriber ("metrics", "flight", ...).
	Name string
	// Received counts events offered to the subscriber's ring.
	Received uint64
	// Dropped counts events overwritten before the subscriber drained
	// them. Exact: Received - Dropped events were actually consumed or
	// are still buffered.
	Dropped uint64
}

// BusStats is a point-in-time bus ledger.
type BusStats struct {
	// Published counts events accepted by Publish since construction.
	Published uint64
	// Subscribers holds one entry per live subscription.
	Subscribers []SubscriberStats
}

// Stats snapshots the bus ledger.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	subs := append([]*Subscription(nil), b.subs...)
	st := BusStats{Published: b.published}
	b.mu.Unlock()
	for _, s := range subs {
		recv, drop := s.Stats()
		st.Subscribers = append(st.Subscribers, SubscriberStats{Name: s.name, Received: recv, Dropped: drop})
	}
	return st
}

// Drops returns the total events dropped across all live subscribers.
func (b *Bus) Drops() uint64 {
	var total uint64
	for _, s := range b.Stats().Subscribers {
		total += s.Dropped
	}
	return total
}

// Close stops the bus: further publishes are dropped (returning 0) and
// every subscription is woken and closed.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := b.subs
	b.subs = nil
	b.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
	}
}

// Subscription is one consumer's bounded view of the bus: a fixed-size
// ring the bus pushes into and the consumer drains. All methods are
// safe for concurrent use.
type Subscription struct {
	name string
	bus  *Bus

	mu       sync.Mutex
	buf      []Event
	start    int // index of oldest buffered event
	n        int // buffered count
	received uint64
	dropped  uint64
	closed   bool

	notify chan struct{}
}

// Name returns the subscriber name given to Subscribe.
func (s *Subscription) Name() string { return s.name }

// push offers one event; called by the bus. Constant-time: when the
// ring is full the oldest buffered event is overwritten and counted
// dropped.
func (s *Subscription) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.received++
	if s.n == len(s.buf) {
		s.buf[s.start] = ev
		s.start = (s.start + 1) % len(s.buf)
		s.dropped++
	} else {
		s.buf[(s.start+s.n)%len(s.buf)] = ev
		s.n++
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Drain removes and returns every buffered event, oldest first. It
// returns nil when the buffer is empty.
func (s *Subscription) Drain() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil
	}
	out := make([]Event, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	s.start, s.n = 0, 0
	return out
}

// Ready returns a channel that receives a token when new events may be
// buffered (coalesced: one token can cover many events) and when the
// subscription closes. Consumers loop: drain, then wait on Ready.
func (s *Subscription) Ready() <-chan struct{} { return s.notify }

// Stats returns the received/dropped counters.
func (s *Subscription) Stats() (received, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.dropped
}

// Closed reports whether the subscription has been closed (by either
// side).
func (s *Subscription) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// markClosed flags the subscription closed and wakes any waiter.
func (s *Subscription) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Close detaches the subscription from the bus and wakes any waiter.
func (s *Subscription) Close() {
	s.bus.unsubscribe(s)
	s.markClosed()
}
