package events

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for a metrics snapshot.
// The snapshot's shapes map directly: monotone counters become
// `counter`, last-value metrics become `gauge`, and the fixed-bucket
// histograms become `histogram` with cumulative `le` buckets plus the
// implicit +Inf bucket the snapshot elides. Every sample carries the
// node as a label so one scrape file can hold a whole fleet.

// promNamespace prefixes every exposed metric name.
const promNamespace = "repro"

// WritePrometheus renders one node's snapshot in Prometheus text
// exposition format. Output is deterministic (sorted metric names)
// so diffs and tests are stable.
func WritePrometheus(w io.Writer, snap MetricsSnapshot) error {
	node := snap.Node

	for _, name := range snap.SortedCounterNames() {
		m := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s{node=%q} %d\n",
			m, m, node, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range snap.SortedGaugeNames() {
		m := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s{node=%q} %g\n",
			m, m, node, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range snap.SortedHistogramNames() {
		h := snap.Histograms[name]
		m := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", m); err != nil {
			return err
		}
		// Snapshot buckets are per-bucket counts with empties elided;
		// the exposition format wants cumulative counts and an explicit
		// +Inf bucket equal to the total count.
		var cum int64
		for _, b := range h.Buckets {
			if b.LE < 0 {
				continue // overflow folds into +Inf below
			}
			cum += b.N
			if _, err := fmt.Fprintf(w, "%s_bucket{node=%q,le=%q} %d\n",
				m, node, trimFloat(b.LE), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{node=%q,le=\"+Inf\"} %d\n%s_sum{node=%q} %g\n%s_count{node=%q} %d\n",
			m, node, h.Count, m, node, h.Sum, m, node, h.Count); err != nil {
			return err
		}
	}

	// Bus-level ledger: accepted publishes and per-subscriber drops
	// (the loss the best-effort-bounded contract permits).
	pub := promNamespace + "_bus_published_total"
	if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s{node=%q} %d\n",
		pub, pub, node, snap.Published); err != nil {
		return err
	}
	if len(snap.Subscribers) > 0 {
		rec := promNamespace + "_subscriber_received_total"
		drop := promNamespace + "_subscriber_dropped_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", rec); err != nil {
			return err
		}
		for _, s := range snap.Subscribers {
			if _, err := fmt.Fprintf(w, "%s{node=%q,subscriber=%q} %d\n",
				rec, node, s.Name, s.Received); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", drop); err != nil {
			return err
		}
		for _, s := range snap.Subscribers {
			if _, err := fmt.Fprintf(w, "%s{node=%q,subscriber=%q} %d\n",
				drop, node, s.Name, s.Dropped); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName maps a snapshot metric name into the exposition's
// [a-zA-Z_:][a-zA-Z0-9_:]* namespace under the repro_ prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(promNamespace)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// trimFloat renders a bucket bound the way Prometheus conventions
// expect ("5", "0.5", "2500").
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}
