package events

import (
	"sort"
	"sync"
)

// metricsRingSize is the registry's subscriber ring. The registry
// drains on every Ready token and again inside Snapshot, so this only
// needs to absorb bursts between scheduler wakeups.
const metricsRingSize = 4096

// journeyTrackMax bounds the in-flight intake-time map the journey
// latency histogram is computed from; beyond it the oldest tracked
// journey is forgotten (its latency simply goes unobserved).
const journeyTrackMax = 4096

// Registry aggregates bus events into counters, gauges, and
// histograms. It consumes through its own bounded subscription — a
// drain goroutine keeps it current and Snapshot drains synchronously
// first, so a snapshot taken after a publish (happens-before) always
// reflects it. Counters are monotone across snapshots.
type Registry struct {
	bus *Bus
	sub *Subscription

	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram

	// journey latency tracking: agent ID -> intake UnixNano, bounded
	// FIFO.
	inflight map[string]int64
	order    []string

	done chan struct{}
}

// NewRegistry subscribes a registry to the bus and starts its drain
// goroutine. Close releases both.
func NewRegistry(bus *Bus) *Registry {
	r := &Registry{
		bus:      bus,
		sub:      bus.Subscribe("metrics", metricsRingSize),
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
		inflight: make(map[string]int64),
		done:     make(chan struct{}),
	}
	go r.run()
	return r
}

func (r *Registry) run() {
	defer close(r.done)
	for {
		r.drain()
		if r.sub.Closed() {
			r.drain()
			return
		}
		<-r.sub.Ready()
	}
}

// drain pulls pending events off the subscription and applies them,
// all under r.mu: the drain and the apply are one critical section,
// so a concurrent Snapshot can never copy the aggregates while a
// drained batch is still in flight toward them.
func (r *Registry) drain() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ev := range r.sub.Drain() {
		r.apply(ev)
	}
}

// apply updates aggregates for one event; caller holds r.mu.
func (r *Registry) apply(ev Event) {
	r.counters["events_total"]++
	r.counters[ev.Kind+"_total"]++
	r.gauges["last_event_unix_nano"] = float64(ev.UnixNano)
	switch ev.Kind {
	case KindIntake:
		r.trackIntake(ev.Agent, ev.UnixNano)
	case KindVerdict:
		if ev.Field("ok") == "false" {
			r.counters["verdict_failed_total"]++
		}
	case KindQuarantine, KindComplete, KindFailed:
		if t0, ok := r.inflight[ev.Agent]; ok {
			delete(r.inflight, ev.Agent)
			ms := float64(ev.UnixNano-t0) / 1e6
			r.histogram("journey_ms").observe(ms)
		}
	case KindExchangeRound:
		if ev.Field("ok") == "false" {
			r.counters["exchange_round_failed_total"]++
		}
		if n := atoi64(ev.Field("merged")); n > 0 {
			r.counters["exchange_entries_merged_total"] += n
			r.histogram("exchange_merged_per_round").observe(float64(n))
		}
	case KindGossipMerge:
		if n := atoi64(ev.Field("entries")); n > 0 {
			r.counters["gossip_entries_merged_total"] += n
		}
	case KindEscalation:
		if s := atof(ev.Field("suspicion")); s > r.gauges["escalation_suspicion_max"] {
			r.gauges["escalation_suspicion_max"] = s
		}
	}
}

// trackIntake records a journey start for the latency histogram,
// bounded FIFO; caller holds r.mu.
func (r *Registry) trackIntake(agent string, at int64) {
	if agent == "" {
		return
	}
	if _, ok := r.inflight[agent]; !ok {
		if len(r.order) >= journeyTrackMax {
			delete(r.inflight, r.order[0])
			r.order = r.order[1:]
		}
		r.order = append(r.order, agent)
	}
	r.inflight[agent] = at
}

// histogram returns the named histogram, creating it with the default
// latency buckets; caller holds r.mu.
func (r *Registry) histogram(name string) *histogram {
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of a registry plus the bus
// delivery ledger — what `node/metrics` serves and `agentctl metrics`
// prints.
type MetricsSnapshot struct {
	// Node is the bus publisher name.
	Node string
	// AtUnixNano is the snapshot time on the bus clock.
	AtUnixNano int64
	// Published counts events the bus accepted since construction.
	Published uint64
	// Counters holds monotone counts keyed by metric name.
	Counters map[string]int64
	// Gauges holds last-value metrics keyed by metric name.
	Gauges map[string]float64
	// Histograms holds distribution metrics keyed by metric name.
	Histograms map[string]HistogramSnapshot
	// Subscribers reports per-subscriber delivery and drop counters —
	// the loss the best-effort-bounded contract permits, reported
	// rather than hidden.
	Subscribers []SubscriberStats
}

// Counter returns a counter by name, 0 when absent.
func (m MetricsSnapshot) Counter(name string) int64 { return m.Counters[name] }

// Drops sums dropped events across subscribers.
func (m MetricsSnapshot) Drops() uint64 {
	var total uint64
	for _, s := range m.Subscribers {
		total += s.Dropped
	}
	return total
}

// Snapshot drains any pending events, then copies the aggregates.
// Because the drain is synchronous, a Snapshot that happens-after a
// Publish observes that event.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.drain()
	st := r.bus.Stats()
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := MetricsSnapshot{
		Node:        r.bus.Node(),
		AtUnixNano:  r.bus.now().UnixNano(),
		Published:   st.Published,
		Counters:    make(map[string]int64, len(r.counters)),
		Gauges:      make(map[string]float64, len(r.gauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(r.hists)),
		Subscribers: st.Subscribers,
	}
	for k, v := range r.counters {
		snap.Counters[k] = v
	}
	for k, v := range r.gauges {
		snap.Gauges[k] = v
	}
	for k, h := range r.hists {
		snap.Histograms[k] = h.snapshot()
	}
	return snap
}

// Close detaches the registry from the bus and stops its goroutine.
func (r *Registry) Close() {
	r.sub.Close()
	<-r.done
}

// histogramBuckets are the fixed upper bounds (exclusive of +Inf,
// which is implicit as the overflow bucket): log-ish scale covering
// sub-millisecond mechanism checks through multi-minute journeys, and
// doubling as small-count buckets for per-round merge sizes.
var histogramBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000, 300000}

// histogram is a fixed-bucket distribution; guarded by Registry.mu.
type histogram struct {
	counts []int64 // len(histogramBuckets)+1, last is overflow
	sum    float64
	n      int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(histogramBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.n++
	for i, le := range histogramBuckets {
		if v <= le {
			h.counts[i]++
			return
		}
	}
	h.counts[len(histogramBuckets)]++
}

// BucketCount is one histogram bucket: the count of observations ≤ LE.
// The overflow bucket has LE = -1 (rendered as +Inf).
type BucketCount struct {
	// LE is the bucket's inclusive upper bound; -1 marks overflow.
	LE float64
	// N is the number of observations in this bucket (not cumulative).
	N int64
}

// HistogramSnapshot is a copied histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of observed values.
	Sum float64
	// Buckets holds per-bucket counts in ascending LE order; empty
	// buckets are elided.
	Buckets []BucketCount
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.n, Sum: h.sum}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		le := -1.0
		if i < len(histogramBuckets) {
			le = histogramBuckets[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, N: n})
	}
	return s
}

// SortedCounterNames returns the snapshot's counter names sorted, for
// stable rendering.
func (m MetricsSnapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(m.Counters))
	for k := range m.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SortedGaugeNames returns the snapshot's gauge names sorted.
func (m MetricsSnapshot) SortedGaugeNames() []string {
	names := make([]string, 0, len(m.Gauges))
	for k := range m.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SortedHistogramNames returns the snapshot's histogram names sorted.
func (m MetricsSnapshot) SortedHistogramNames() []string {
	names := make([]string, 0, len(m.Histograms))
	for k := range m.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// atoi64 parses a decimal field value, 0 on any error.
func atoi64(s string) int64 {
	var n int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	if s == "" {
		return 0
	}
	return n
}

// atof parses a simple non-negative decimal ("3.25"), 0 on any error.
func atof(s string) float64 {
	intPart, fracPart := s, ""
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			intPart, fracPart = s[:i], s[i+1:]
			break
		}
	}
	whole := atoi64(intPart)
	if intPart != "" && whole == 0 && intPart != "0" {
		return 0
	}
	v := float64(whole)
	scale := 0.1
	for i := 0; i < len(fracPart); i++ {
		c := fracPart[i]
		if c < '0' || c > '9' {
			return 0
		}
		v += float64(c-'0') * scale
		scale /= 10
	}
	return v
}
