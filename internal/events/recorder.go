package events

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/shardstore"
)

// DefaultFlightCapacity is the flight recorder ring size when
// RecorderConfig leaves it zero.
const DefaultFlightCapacity = 4096

// RecorderConfig parameterizes a flight recorder.
type RecorderConfig struct {
	// Capacity bounds the recorded ring; 0 means
	// DefaultFlightCapacity.
	Capacity int
	// OnError observes the recorder's first (sticky) persistence
	// failure; may be nil. The recorder keeps running in memory — the
	// degraded flag is what health reporting surfaces.
	OnError func(error)
	// SyncEvery tunes the underlying WAL's fsync batch; 0 takes the
	// WAL default.
	SyncEvery int
}

// Recorder is the flight recorder: a ring of the most recent bus
// events persisted through the shardstore WAL backend, so the moments
// before a crash are replayable afterwards (`agentctl flight`).
//
// The recorder is opened *before* the bus so its recovered high-water
// sequence can seed BusConfig.FirstSeq — recorded sequence numbers
// then stay monotone across restarts and replayed history sorts
// unambiguously against live events.
type Recorder struct {
	store *shardstore.Store[Event]
	cap   int

	mu      sync.Mutex
	lo, hi  uint64 // live window [lo, hi]; 0,0 when empty
	lastSeq uint64 // highest seq ever recorded or recovered

	sub      *Subscription
	done     chan struct{}
	degraded atomic.Bool
	err      error
}

// flightKey renders a sequence number as a fixed-width sortable key.
func flightKey(seq uint64) string { return fmt.Sprintf("%020d", seq) }

// OpenRecorder opens (or recovers) a flight recorder whose WAL lives
// in dir. Call Attach to start consuming from a bus.
func OpenRecorder(dir string, cfg RecorderConfig) (*Recorder, error) {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	r := &Recorder{cap: capacity, done: make(chan struct{})}
	wal, err := shardstore.OpenWAL(dir, shardstore.WALConfig{SyncEvery: cfg.SyncEvery})
	if err != nil {
		return nil, fmt.Errorf("events: open flight WAL: %w", err)
	}
	store, err := shardstore.NewPersistent(
		// The recorder bounds its window itself with explicit deletes;
		// the store capacity is a backstop well above it so FIFO
		// eviction never races the ring arithmetic.
		shardstore.Config[Event]{Capacity: capacity * 2},
		shardstore.PersistConfig[Event]{
			Backend: wal,
			Codec: shardstore.Codec[Event]{
				Encode: func(e Event) ([]byte, error) { return EncodeEvent(e), nil },
				Decode: DecodeEvent,
			},
			OnError: func(err error) {
				r.degraded.Store(true)
				r.mu.Lock()
				if r.err == nil {
					r.err = err
				}
				r.mu.Unlock()
				if cfg.OnError != nil {
					cfg.OnError(err)
				}
			},
		},
	)
	if err != nil {
		return nil, fmt.Errorf("events: open flight store: %w", err)
	}
	r.store = store
	// Recover the window bounds from the replayed state.
	store.Range(func(_ string, e Event) bool {
		if r.lo == 0 || e.Seq < r.lo {
			r.lo = e.Seq
		}
		if e.Seq > r.hi {
			r.hi = e.Seq
		}
		return true
	})
	r.lastSeq = r.hi
	return r, nil
}

// NextSeq returns the sequence number after the highest recorded
// event — the value to seed BusConfig.FirstSeq with.
func (r *Recorder) NextSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastSeq + 1
}

// Attach subscribes the recorder to a bus and starts the persist
// goroutine. Attach at most once.
func (r *Recorder) Attach(bus *Bus) {
	r.sub = bus.Subscribe("flight", r.cap)
	go r.run()
}

func (r *Recorder) run() {
	defer close(r.done)
	for {
		r.record(r.sub.Drain())
		if r.sub.Closed() {
			r.record(r.sub.Drain())
			return
		}
		<-r.sub.Ready()
	}
}

// record persists a drained batch and trims the window.
func (r *Recorder) record(evs []Event) {
	for _, ev := range evs {
		r.store.Put(flightKey(ev.Seq), ev)
		r.mu.Lock()
		if r.lo == 0 {
			r.lo = ev.Seq
		}
		if ev.Seq > r.hi {
			r.hi = ev.Seq
		}
		if ev.Seq > r.lastSeq {
			r.lastSeq = ev.Seq
		}
		var drop []uint64
		for r.hi-r.lo >= uint64(r.cap) {
			drop = append(drop, r.lo)
			r.lo++
		}
		r.mu.Unlock()
		for _, seq := range drop {
			r.store.Delete(flightKey(seq))
		}
	}
}

// Events returns the recorded window sorted by sequence number —
// recovered pre-crash history plus whatever has been consumed live.
func (r *Recorder) Events() []Event {
	var out []Event
	r.store.Range(func(_ string, e Event) bool {
		out = append(out, e)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return r.store.Len() }

// Degraded reports whether the recorder's WAL has hit a sticky
// persistence failure (it keeps recording in memory).
func (r *Recorder) Degraded() bool { return r.degraded.Load() }

// Err returns the sticky persistence failure, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close detaches from the bus (if attached), flushes, and closes the
// WAL. It returns the sticky persistence failure, if any.
func (r *Recorder) Close() error {
	if r.sub != nil {
		r.sub.Close()
		<-r.done
	}
	return r.store.Close()
}
