package events

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPublishNeverBlocksOnSlowSubscriber pins the bus contract the hot
// paths rely on: a subscriber that never drains cannot block Publish.
// Run under -race in CI; the assertions also pin the drop accounting
// exactly (received - dropped = ring capacity once the ring is full).
func TestPublishNeverBlocksOnSlowSubscriber(t *testing.T) {
	bus := NewBus(BusConfig{Node: "n1"})
	defer bus.Close()

	const ringCap = 8
	sub := bus.Subscribe("stuck", ringCap) // never drained until the end

	const publishers = 4
	const perPublisher = 500
	const total = publishers * perPublisher

	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				if seq := bus.Publish(Event{Kind: KindIntake, Agent: fmt.Sprintf("a-%d-%d", p, i)}); seq == 0 {
					t.Error("publish on open bus returned 0")
					return
				}
			}
		}(p)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publishers blocked on an undrained subscriber")
	}

	received, dropped := sub.Stats()
	if received != total {
		t.Fatalf("received = %d, want %d", received, total)
	}
	if dropped != total-ringCap {
		t.Fatalf("dropped = %d, want %d (total %d - ring %d)", dropped, total-ringCap, total, ringCap)
	}
	evs := sub.Drain()
	if len(evs) != ringCap {
		t.Fatalf("drain returned %d events, want the newest %d", len(evs), ringCap)
	}
	// The survivors are the newest events in publish order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring survivors not contiguous: seq %d follows %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	if evs[len(evs)-1].Seq != total {
		t.Fatalf("newest survivor seq = %d, want %d", evs[len(evs)-1].Seq, total)
	}
	if stats := bus.Stats(); stats.Published != total {
		t.Fatalf("bus published = %d, want %d", stats.Published, total)
	}
}

// TestSubscriberSeesPublishOrder pins that a drained subscriber
// observes the bus's total order: sequence numbers are dense and
// monotone even with concurrent publishers.
func TestSubscriberSeesPublishOrder(t *testing.T) {
	bus := NewBus(BusConfig{Node: "n1"})
	defer bus.Close()
	sub := bus.Subscribe("reader", 4096)

	const total = 2000
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				bus.Publish(Event{Kind: KindIntake})
			}
		}()
	}
	wg.Wait()

	evs := sub.Drain()
	if len(evs) != total {
		t.Fatalf("drained %d events, want %d", len(evs), total)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}

// TestCursorResumeAcrossJournalWrap drives a watcher cursor through a
// journal ring smaller than the event stream: batches chain via the
// resume cursor, and a cursor that fell off the ring reports exactly
// how many events were missed instead of hiding the gap.
func TestCursorResumeAcrossJournalWrap(t *testing.T) {
	const ringSize = 16
	bus := NewBus(BusConfig{Node: "n1", JournalSize: ringSize})
	defer bus.Close()

	// Fill well past the ring: events 1..48, ring retains 33..48.
	const total = 3 * ringSize
	for i := 0; i < total; i++ {
		bus.Publish(Event{Kind: KindIntake, Agent: fmt.Sprintf("a%d", i)})
	}

	// A cursor from the beginning: the wrapped-off prefix is reported.
	evs, next, missed := bus.ReadSince(1, 4)
	if missed != total-ringSize {
		t.Fatalf("missed = %d, want %d", missed, total-ringSize)
	}
	if len(evs) != 4 || evs[0].Seq != total-ringSize+1 {
		t.Fatalf("first batch starts at seq %d (len %d), want %d", evs[0].Seq, len(evs), total-ringSize+1)
	}

	// Chain the remaining batches: no further misses, dense coverage.
	got := len(evs)
	last := evs[len(evs)-1].Seq
	for {
		evs, next2, missed := bus.ReadSince(next, 4)
		if missed != 0 {
			t.Fatalf("resume from %d missed %d events", next, missed)
		}
		if len(evs) == 0 {
			break
		}
		for _, ev := range evs {
			if ev.Seq != last+1 {
				t.Fatalf("gap in resumed stream: seq %d after %d", ev.Seq, last)
			}
			last = ev.Seq
		}
		got += len(evs)
		next = next2
	}
	if got != ringSize || last != total {
		t.Fatalf("resumed %d events ending at %d, want %d ending at %d", got, last, ringSize, total)
	}

	// The tail cursor sees only what is published after it.
	tail := bus.NextSeq()
	bus.Publish(Event{Kind: KindQuarantine, Agent: "late"})
	evs, _, missed = bus.ReadSince(tail, 0)
	if missed != 0 || len(evs) != 1 || evs[0].Kind != KindQuarantine {
		t.Fatalf("tail cursor read = %d events (missed %d), want exactly the late quarantine", len(evs), missed)
	}
}

// TestPublishAfterCloseReturnsZero pins the closed-bus behaviour
// producers rely on (no panic, seq 0).
func TestPublishAfterCloseReturnsZero(t *testing.T) {
	bus := NewBus(BusConfig{Node: "n1"})
	sub := bus.Subscribe("s", 4)
	bus.Close()
	if seq := bus.Publish(Event{Kind: KindIntake}); seq != 0 {
		t.Fatalf("publish after close returned %d, want 0", seq)
	}
	if !sub.Closed() {
		t.Fatal("subscription not marked closed by bus close")
	}
}
