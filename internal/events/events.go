// Package events is the platform's observability spine: a bounded,
// non-blocking pub/sub bus that every producing layer (core node,
// policy, protection, replication) publishes typed facts into, plus
// the three built-in consumers the operations control plane is made
// of — a metrics registry (counters/gauges/histograms), a cursor-based
// journal that `agentctl watch` tails over plain request/response, and
// a WAL-backed flight recorder for post-incident replay.
//
// The bus contract is best-effort-bounded: Publish never blocks and
// never waits on a consumer; a subscriber that falls behind loses the
// oldest buffered events and its drop counter says exactly how many.
// Ordering is per publisher — sequence numbers are assigned under the
// bus lock, so every consumer observes the same total order, but no
// cross-node ordering exists or is implied.
package events

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/canon"
)

// Event kinds. One constant per fact the platform publishes; consumers
// switch on these, so the strings are wire/WAL-stable.
const (
	// KindIntake fires when an agent is accepted into a node's queue.
	KindIntake = "intake"
	// KindVerdict fires for every mechanism verdict a node records.
	KindVerdict = "verdict"
	// KindQuarantine fires when a journey is quarantined.
	KindQuarantine = "quarantine"
	// KindComplete fires when a journey finishes its itinerary clean.
	KindComplete = "complete"
	// KindForward fires when an agent is forwarded to its next hop.
	KindForward = "forward"
	// KindFailed fires when a journey fails for a non-detection reason
	// (transport error, context cancellation, mechanism error).
	KindFailed = "failed"
	// KindJournalEvict fires when the node journal evicts an entry to
	// capacity or TTL pressure.
	KindJournalEvict = "journal-evict"
	// KindPersistError fires when a durable store reports a (sticky)
	// persistence failure.
	KindPersistError = "persist-error"
	// KindEvidencePrune fires immediately before an evidence file is
	// removed by the count or byte budget — the archive-before-drop
	// hook.
	KindEvidencePrune = "evidence-prune"
	// KindEscalation fires when a host's ledger suspicion crosses the
	// escalation threshold upward (via local observation or merge).
	KindEscalation = "escalation"
	// KindGossipMerge fires when verified gossip/exchange extracts are
	// merged into the local ledger.
	KindGossipMerge = "gossip-merge"
	// KindExchangeRound fires after every anti-entropy exchange round,
	// successful or not.
	KindExchangeRound = "exchange-round"
	// KindPeerCooldown fires when an exchange peer enters or extends
	// its failure cooldown.
	KindPeerCooldown = "peer-cooldown"
	// KindLevelEscalation fires when the adaptive gate escalates a
	// session to full re-execution because of suspicion.
	KindLevelEscalation = "level-escalation"
	// KindOwnerNotice fires when policy asks the platform to notify
	// the agent's owner.
	KindOwnerNotice = "owner-notice"
	// KindStageDissent fires once per dissenting or failed replica in
	// a replicated stage.
	KindStageDissent = "stage-dissent"
	// KindAdmissionRefused fires when a node's admission policy turns a
	// delivery away before intake (the verdict-free refusal path); Host
	// names the suspicious sender that was shunned.
	KindAdmissionRefused = "admission-refused"
	// KindIntakeRefused fires when a RefuseWhenFull node fast-fails a
	// delivery against a full intake queue — the overload spillover
	// signal planners route around.
	KindIntakeRefused = "intake-refused"
)

// Event is one typed fact on the bus. Node, Seq, and UnixNano are
// stamped by the bus at publish; producers fill Kind and whichever of
// Agent/Host/Fields apply. Fields is a small bag of extras (reason,
// mechanism, counts) — bounded at publish so the canonical encoding is
// total.
type Event struct {
	// Seq is the publisher-local sequence number; dense and monotone
	// per bus, and — when a flight recorder seeds the bus — monotone
	// across restarts of the same node.
	Seq uint64
	// Kind is one of the Kind* constants.
	Kind string
	// Node is the publishing node's name.
	Node string
	// Agent is the subject agent ID, if any.
	Agent string
	// Host is the subject host or peer name, if any (the suspect of a
	// failed verdict, the exchange partner, the next hop).
	Host string
	// UnixNano is the publish time on the bus clock.
	UnixNano int64
	// Fields holds bounded key/value extras; may be nil.
	Fields map[string]string
}

// Time returns the event timestamp as a time.Time.
func (e Event) Time() time.Time { return time.Unix(0, e.UnixNano) }

// Field returns a field value or "" when absent.
func (e Event) Field(key string) string {
	if e.Fields == nil {
		return ""
	}
	return e.Fields[key]
}

// Bounds on the canonical event encoding. Publish sanitizes events to
// fit, so EncodeEvent is total on anything that went through a bus.
const (
	// MaxEventFields caps the Fields map size.
	MaxEventFields = 16
	// MaxEventStringLen caps every string in an event (kind, names,
	// field keys and values). Longer strings are truncated at publish.
	MaxEventStringLen = 1024
)

// eventWireLabel versions the canonical event encoding.
const eventWireLabel = "event-v1"

// ErrEventWire reports a malformed canonical event encoding.
var ErrEventWire = errors.New("events: malformed event encoding")

// EncodeEvent renders an event as a bounded canonical tuple, the
// format the flight recorder persists through the WAL backend.
func EncodeEvent(e Event) []byte {
	var seq, ts [8]byte
	binary.BigEndian.PutUint64(seq[:], e.Seq)
	binary.BigEndian.PutUint64(ts[:], uint64(e.UnixNano))
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kv := make([][]byte, 0, 2*len(keys))
	for _, k := range keys {
		kv = append(kv, []byte(k), []byte(e.Fields[k]))
	}
	return canon.Tuple(
		[]byte(eventWireLabel),
		seq[:],
		[]byte(e.Kind),
		[]byte(e.Node),
		[]byte(e.Agent),
		[]byte(e.Host),
		ts[:],
		canon.Tuple(kv...),
	)
}

// DecodeEvent parses a canonical event encoding produced by
// EncodeEvent, enforcing the same bounds Publish does.
func DecodeEvent(b []byte) (Event, error) {
	fields, err := canon.ParseTuple(b)
	if err != nil {
		return Event{}, fmt.Errorf("%w: %v", ErrEventWire, err)
	}
	if len(fields) != 8 || string(fields[0]) != eventWireLabel {
		return Event{}, ErrEventWire
	}
	if len(fields[1]) != 8 || len(fields[6]) != 8 {
		return Event{}, ErrEventWire
	}
	e := Event{
		Seq:      binary.BigEndian.Uint64(fields[1]),
		Kind:     string(fields[2]),
		Node:     string(fields[3]),
		Agent:    string(fields[4]),
		Host:     string(fields[5]),
		UnixNano: int64(binary.BigEndian.Uint64(fields[6])),
	}
	for _, s := range []string{e.Kind, e.Node, e.Agent, e.Host} {
		if len(s) > MaxEventStringLen {
			return Event{}, ErrEventWire
		}
	}
	kv, err := canon.ParseTuple(fields[7])
	if err != nil || len(kv)%2 != 0 {
		return Event{}, ErrEventWire
	}
	if len(kv) > 2*MaxEventFields {
		return Event{}, ErrEventWire
	}
	if len(kv) > 0 {
		e.Fields = make(map[string]string, len(kv)/2)
		for i := 0; i < len(kv); i += 2 {
			k, v := string(kv[i]), string(kv[i+1])
			if len(k) > MaxEventStringLen || len(v) > MaxEventStringLen {
				return Event{}, ErrEventWire
			}
			e.Fields[k] = v
		}
	}
	return e, nil
}

// clip truncates a string to the event string bound.
func clip(s string) string {
	if len(s) > MaxEventStringLen {
		return s[:MaxEventStringLen]
	}
	return s
}

// sanitize bounds an event's strings and fields in place so every
// published event has a valid canonical encoding.
func sanitize(e *Event) {
	e.Kind = clip(e.Kind)
	e.Node = clip(e.Node)
	e.Agent = clip(e.Agent)
	e.Host = clip(e.Host)
	if len(e.Fields) == 0 {
		return
	}
	if len(e.Fields) > MaxEventFields {
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		trimmed := make(map[string]string, MaxEventFields)
		for _, k := range keys[:MaxEventFields] {
			trimmed[k] = e.Fields[k]
		}
		e.Fields = trimmed
	}
	for k, v := range e.Fields {
		ck, cv := clip(k), clip(v)
		if ck != k {
			delete(e.Fields, k)
		}
		e.Fields[ck] = cv
	}
}
