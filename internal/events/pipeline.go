package events

import (
	"path/filepath"
	"time"
)

// FlightDirName is the flight recorder's WAL directory under a node's
// data directory.
const FlightDirName = "flight"

// PipelineConfig parameterizes Open.
type PipelineConfig struct {
	// Node is the publisher name stamped into events.
	Node string
	// Now overrides the event clock; nil means time.Now.
	Now func() time.Time
	// JournalSize bounds the cursor journal; 0 means
	// DefaultJournalSize.
	JournalSize int
	// DataDir, when non-empty, enables the flight recorder with its
	// WAL under DataDir/flight.
	DataDir string
	// FlightCapacity bounds the recorded ring; 0 means
	// DefaultFlightCapacity.
	FlightCapacity int
	// OnPersistError observes the flight recorder's first sticky
	// persistence failure; may be nil.
	OnPersistError func(error)
}

// Pipeline bundles one node's observability plane: the bus plus its
// built-in consumers (metrics registry always; flight recorder when a
// data directory is configured). It is what deployments hand to
// core.NodeConfig.Events.
type Pipeline struct {
	// Bus is the publish surface producers use.
	Bus *Bus
	// Metrics is the aggregating registry behind `node/metrics`.
	Metrics *Registry
	// Flight is the WAL-backed recorder behind `node/flight`; nil when
	// the pipeline is memory-only.
	Flight *Recorder
}

// Open builds a pipeline: recorder first (so its recovered high-water
// sequence seeds the bus and cursors stay monotone across restarts),
// then bus, then consumers.
func Open(cfg PipelineConfig) (*Pipeline, error) {
	p := &Pipeline{}
	first := uint64(0)
	if cfg.DataDir != "" {
		rec, err := OpenRecorder(filepath.Join(cfg.DataDir, FlightDirName), RecorderConfig{
			Capacity: cfg.FlightCapacity,
			OnError:  cfg.OnPersistError,
		})
		if err != nil {
			return nil, err
		}
		p.Flight = rec
		first = rec.NextSeq()
	}
	p.Bus = NewBus(BusConfig{
		Node:        cfg.Node,
		Now:         cfg.Now,
		JournalSize: cfg.JournalSize,
		FirstSeq:    first,
	})
	if p.Flight != nil {
		p.Flight.Attach(p.Bus)
	}
	p.Metrics = NewRegistry(p.Bus)
	return p, nil
}

// Publish forwards to the bus; safe on a nil pipeline (no-op
// returning 0), so producers can hold an optional pipeline without
// guarding every call site.
func (p *Pipeline) Publish(ev Event) uint64 {
	if p == nil || p.Bus == nil {
		return 0
	}
	return p.Bus.Publish(ev)
}

// Degraded reports whether the flight recorder has hit a sticky
// persistence failure. False on a nil pipeline or memory-only
// pipeline.
func (p *Pipeline) Degraded() bool {
	if p == nil || p.Flight == nil {
		return false
	}
	return p.Flight.Degraded()
}

// Drops returns total events dropped across the bus's subscribers; 0
// on a nil pipeline.
func (p *Pipeline) Drops() uint64 {
	if p == nil || p.Bus == nil {
		return 0
	}
	return p.Bus.Drops()
}

// Close tears the pipeline down: bus first (wakes and closes every
// subscription), then the consumers drain their final batches and
// release their resources. It returns the flight recorder's sticky
// persistence failure, if any. Safe on a nil pipeline.
func (p *Pipeline) Close() error {
	if p == nil {
		return nil
	}
	if p.Bus != nil {
		p.Bus.Close()
	}
	if p.Metrics != nil {
		p.Metrics.Close()
	}
	if p.Flight != nil {
		return p.Flight.Close()
	}
	return nil
}
