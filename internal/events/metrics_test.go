package events

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSnapshotReflectsPriorPublishes pins the registry's synchronous
// contract: a snapshot taken after a publish returns (happens-before)
// always reflects that event, no sleeps needed.
func TestSnapshotReflectsPriorPublishes(t *testing.T) {
	clock := time.Unix(0, 1000)
	bus := NewBus(BusConfig{Node: "n1", Now: func() time.Time { return clock }})
	reg := NewRegistry(bus)
	defer func() { bus.Close(); reg.Close() }()

	bus.Publish(Event{Kind: KindIntake, Agent: "a1"})
	clock = clock.Add(40 * time.Millisecond)
	bus.Publish(Event{Kind: KindVerdict, Agent: "a1", Host: "evil", Fields: map[string]string{"ok": "false"}})
	bus.Publish(Event{Kind: KindQuarantine, Agent: "a1", Host: "evil"})
	bus.Publish(Event{Kind: KindExchangeRound, Host: "peer", Fields: map[string]string{"ok": "true", "merged": "3"}})
	bus.Publish(Event{Kind: KindGossipMerge, Fields: map[string]string{"entries": "2"}})

	s := reg.Snapshot()
	if got := s.Counter("events_total"); got != 5 {
		t.Fatalf("events_total = %d, want 5", got)
	}
	if got := s.Counter("verdict_failed_total"); got != 1 {
		t.Fatalf("verdict_failed_total = %d, want 1", got)
	}
	if got := s.Counter(KindQuarantine + "_total"); got != 1 {
		t.Fatalf("quarantine_total = %d, want 1", got)
	}
	if got := s.Counter("exchange_entries_merged_total"); got != 3 {
		t.Fatalf("exchange_entries_merged_total = %d, want 3", got)
	}
	if got := s.Counter("gossip_entries_merged_total"); got != 2 {
		t.Fatalf("gossip_entries_merged_total = %d, want 2", got)
	}
	h, ok := s.Histograms["journey_ms"]
	if !ok || h.Count != 1 {
		t.Fatalf("journey_ms = %+v (ok=%v), want one observation", h, ok)
	}
	// 40ms lands in the le=50 bucket.
	if h.Sum != 40 {
		t.Fatalf("journey_ms sum = %v, want 40", h.Sum)
	}
	if s.Published != 5 {
		t.Fatalf("snapshot published = %d, want 5", s.Published)
	}
}

// TestCountersMonotoneAcrossConcurrentSnapshots hammers the registry
// with concurrent publishers while snapshotting, asserting counters
// never move backwards and converge on the exact publish total.
func TestCountersMonotoneAcrossConcurrentSnapshots(t *testing.T) {
	bus := NewBus(BusConfig{Node: "n1"})
	reg := NewRegistry(bus)
	defer func() { bus.Close(); reg.Close() }()

	const publishers = 4
	const perPublisher = 300
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				bus.Publish(Event{Kind: KindVerdict, Agent: fmt.Sprintf("a-%d-%d", p, i), Fields: map[string]string{"ok": "true"}})
			}
		}(p)
	}

	stop := make(chan struct{})
	go func() { wg.Wait(); close(stop) }()
	var last int64
	for sampling := true; sampling; {
		select {
		case <-stop:
			sampling = false
		default:
		}
		s := reg.Snapshot()
		if got := s.Counter("events_total"); got < last {
			t.Fatalf("events_total went backwards: %d after %d", got, last)
		} else {
			last = got
		}
	}

	final := reg.Snapshot()
	if got := final.Counter("events_total"); got != publishers*perPublisher {
		t.Fatalf("final events_total = %d, want %d", got, publishers*perPublisher)
	}
	if got := final.Counter(KindVerdict + "_total"); got != publishers*perPublisher {
		t.Fatalf("final verdict_total = %d, want %d", got, publishers*perPublisher)
	}
	if drops := final.Drops(); drops != 0 {
		// The drain goroutine plus synchronous snapshot drains should
		// keep a 4096-ring ahead of 1200 events; a drop here means the
		// accounting, not the scheduler, is broken.
		t.Fatalf("metrics subscriber dropped %d events", drops)
	}
}
