package host

import (
	"context"
	"testing"

	"repro/internal/agentlang"
	"repro/internal/canon"
	"repro/internal/value"
)

// tamperBehavior flips one variable after execution, modelling a
// "manipulation of data" attack for the digest-coherence test.
type tamperBehavior struct{}

func (tamperBehavior) WrapEnv(env agentlang.Env) agentlang.Env { return env }
func (tamperBehavior) TamperState(st value.State)              { st["forged"] = value.Int(666) }
func (tamperBehavior) TamperRecord(rec *SessionRecord)         {}

// TestSessionInvalidatesStateDigest covers the session-level state
// write paths the agent package cannot reach: interpreter writes
// (including copy-on-write indexed assignment) and malicious
// TamperState mutation. After each, the memoized digest must equal a
// from-scratch rehash.
func TestSessionInvalidatesStateDigest(t *testing.T) {
	h := newHost(t, "h1", func(c *Config) {
		c.Behavior = tamperBehavior{}
	})
	ag := newAgent(t, `
proc main() { xs = [1, 2] migrate("h1", "second") }
proc second() { xs[0] = 99 done() }`, "main")

	check := func(step string) canon.Digest {
		t.Helper()
		got, want := ag.StateDigest(), canon.HashState(ag.State)
		if got != want {
			t.Fatalf("%s: cached digest %s != recomputed %s", step, got, want)
		}
		return got
	}

	d0 := check("before first session")
	if _, err := h.RunSession(context.Background(), ag, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	d1 := check("after first session")
	if d1 == d0 {
		t.Fatal("digest unchanged by session writes")
	}
	if ag.State["forged"].Int != 666 {
		t.Fatal("tamper behavior did not run")
	}
	if _, err := h.RunSession(context.Background(), ag, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if d2 := check("after indexed-assignment session"); d2 == d1 {
		t.Fatal("digest unchanged by copy-on-write indexed assignment")
	}
}

// TestRecordDigestsMemoized pins the SessionRecord digest cache against
// recomputation.
func TestRecordDigestsMemoized(t *testing.T) {
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `proc main() { x = 1 done() }`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.InitialDigest() != canon.HashState(rec.Initial) {
		t.Error("initial digest mismatch")
	}
	if rec.ResultingDigest() != canon.HashState(rec.Resulting) {
		t.Error("resulting digest mismatch")
	}
	if rec.InitialDigest() == rec.ResultingDigest() {
		t.Error("distinct states share a digest")
	}
}
