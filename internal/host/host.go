// Package host implements the agent platform: the execution environment
// that takes an agent's initial state, runs an execution session feeding
// it input, and produces the resulting state (paper §2.1, Fig. 1).
//
// A Host owns a signing identity, a trust classification, a resource
// store (its "database"), a per-agent mailbox, and a trace store. It
// knows nothing about protection mechanisms; those are layered on top by
// package core, which invokes hosts through the session API defined
// here. Malicious behaviour is injected through the Behavior hook so
// that the attack library can corrupt executions without the platform
// code carrying attack logic.
package host

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/agent"
	"repro/internal/agentlang"
	"repro/internal/canon"
	"repro/internal/shardstore"
	"repro/internal/sigcrypto"
	"repro/internal/trace"
	"repro/internal/value"
)

// InputFeed services read(key) requests: the data a host hands to the
// agent from the outside (shop prices, query results, ...). It may be
// nil, in which case read falls back to the resource store.
type InputFeed func(agentID, key string) (value.Value, error)

// ActionSink observes output actions (send, act) the agent performs.
// It may be nil. Returning an error aborts the agent's execution.
type ActionSink func(agentID, action string, args []value.Value) error

// Behavior is the malicious-host hook. A nil Behavior is an honest
// host. The attack library implements this interface; the platform
// calls it at the three points where a host can cheat without breaking
// the protocol framing: while serving the session (WrapEnv), on the
// resulting state (TamperState), and on the session record it reports
// to checking mechanisms (TamperRecord).
type Behavior interface {
	// WrapEnv may interpose on the agent's environment, e.g. to return
	// forged input or execute statements incorrectly.
	WrapEnv(env agentlang.Env) agentlang.Env
	// TamperState may mutate the resulting agent state after execution
	// (a "manipulation of data" attack, Fig. 2 area 5).
	TamperState(st value.State)
	// TamperRecord may falsify what the host tells checking mechanisms
	// about the session (e.g. lie about the input, Fig. 2 area 12).
	TamperRecord(rec *SessionRecord)
}

// Config configures a host.
type Config struct {
	// Name is the host's principal name, unique in the deployment.
	Name string
	// Keys is the host's signing identity.
	Keys *sigcrypto.KeyPair
	// Registry is the shared principal registry (PKI).
	Registry *sigcrypto.Registry
	// Trusted marks hosts the agent owner trusts (home hosts, §5.1:
	// "execution sessions on trusted hosts are not checked").
	Trusted bool
	// Resources is the host's data offering, served via resource(key)
	// and as the read() fallback.
	Resources map[string]value.Value
	// Feed services read(key); may be nil.
	Feed InputFeed
	// Sink observes output actions; may be nil.
	Sink ActionSink
	// Clock supplies time(); defaults to a deterministic session
	// counter starting at a fixed epoch. Wall-clock realism is not
	// needed because the value is recorded as input either way.
	Clock func() int64
	// RandSeed seeds the host's deterministic rand() source.
	RandSeed int64
	// Fuel bounds statements per session; 0 means agentlang.DefaultFuel.
	Fuel int64
	// RecordTrace enables full execution-trace recording (needed by the
	// vigna and proof mechanisms; the example mechanism needs only the
	// input log).
	RecordTrace bool
	// MailboxLimit bounds the number of undelivered messages queued per
	// agent; Deliver fails with ErrMailboxFull beyond it. 0 means
	// DefaultMailboxLimit; a hostile peer must not be able to grow a
	// host's memory without bound.
	MailboxLimit int
	// Behavior injects malicious conduct; nil means honest.
	Behavior Behavior
}

// Host is one agent platform node. Per-agent journals (mailboxes and
// the action ledger) live in sharded stores so concurrent sessions of
// distinct agents never serialize on one mutex; mu guards only the
// host-global clock and rand state.
type Host struct {
	cfg    Config
	traces *trace.Store
	// mailbox queues undelivered messages per agent (recv()); each
	// queue is bounded by Config.MailboxLimit.
	mailbox *shardstore.Store[[]value.Value]
	// actions records output actions performed on this host, per agent.
	actions *shardstore.Store[[]ActionRecord]

	mu     sync.Mutex
	clockN int64
	randSt uint64
}

// ActionRecord is one output action performed by an agent on this host.
type ActionRecord struct {
	Action string
	Args   []value.Value
}

// ErrRefused is returned when a host refuses an agent (failed
// validation).
var ErrRefused = errors.New("host: agent refused")

// ErrMailboxFull is returned by Deliver when an agent's mailbox is at
// its configured bound.
var ErrMailboxFull = errors.New("host: mailbox full")

// DefaultMailboxLimit is the per-agent mailbox bound when
// Config.MailboxLimit is zero.
const DefaultMailboxLimit = 256

// New creates a host and registers its key with the registry.
func New(cfg Config) (*Host, error) {
	if cfg.Name == "" {
		return nil, errors.New("host: name must not be empty")
	}
	if cfg.Keys == nil {
		return nil, fmt.Errorf("host %s: keys must not be nil", cfg.Name)
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("host %s: registry must not be nil", cfg.Name)
	}
	if cfg.Keys.ID() != cfg.Name {
		return nil, fmt.Errorf("host %s: key principal %q does not match host name", cfg.Name, cfg.Keys.ID())
	}
	if err := cfg.Registry.RegisterKeyPair(cfg.Keys); err != nil {
		return nil, fmt.Errorf("host %s: registering key: %w", cfg.Name, err)
	}
	seed := uint64(cfg.RandSeed)
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio default; recorded as input anyway
	}
	return &Host{
		cfg:     cfg,
		traces:  trace.NewStore(),
		mailbox: shardstore.New[[]value.Value](shardstore.Config[[]value.Value]{}),
		actions: shardstore.New[[]ActionRecord](shardstore.Config[[]ActionRecord]{}),
		randSt:  seed,
	}, nil
}

// Name returns the host's principal name.
func (h *Host) Name() string { return h.cfg.Name }

// Trusted reports the host's trust classification.
func (h *Host) Trusted() bool { return h.cfg.Trusted }

// Keys returns the host's signing identity.
func (h *Host) Keys() *sigcrypto.KeyPair { return h.cfg.Keys }

// Registry returns the shared principal registry.
func (h *Host) Registry() *sigcrypto.Registry { return h.cfg.Registry }

// Traces returns the host's retained trace store.
func (h *Host) Traces() *trace.Store { return h.traces }

// Deliver queues a message for an agent; the agent receives it via
// recv(). The per-agent mailbox is bounded (Config.MailboxLimit):
// overflow returns ErrMailboxFull to the caller instead of growing
// memory without limit.
func (h *Host) Deliver(agentID string, msg value.Value) error {
	limit := h.cfg.MailboxLimit
	if limit <= 0 {
		limit = DefaultMailboxLimit
	}
	full := false
	h.mailbox.Upsert(agentID, func(q []value.Value, _ bool) []value.Value {
		if len(q) >= limit {
			full = true
			return q
		}
		return append(q, msg.Clone())
	})
	if full {
		return fmt.Errorf("%w: host %s, agent %s at %d messages", ErrMailboxFull, h.cfg.Name, agentID, limit)
	}
	return nil
}

// Actions returns the output actions the given agent performed on this
// host, in order.
func (h *Host) Actions(agentID string) []ActionRecord {
	var out []ActionRecord
	h.actions.View(agentID, func(recs []ActionRecord, _ bool) {
		out = append(out, recs...)
	})
	return out
}

// SessionRecord captures everything about one execution session that
// checking mechanisms may use as reference data (paper §3.5): the
// initial state, the resulting state, the input, and the execution log
// (trace). It is the host-side ground truth; what a malicious host
// *reports* may differ (see Behavior.TamperRecord).
type SessionRecord struct {
	HostName string
	AgentID  string
	Hop      int
	Entry    string
	// Initial and Resulting are copy-on-write snapshots of the data
	// state before and after the session (value.State.Snapshot): they
	// are isolated from every platform write path — further sessions,
	// Agent.SetVar, interpreter writes — without paying a deep copy.
	// Code outside the platform that mutates nested agent state
	// directly must Clone first.
	Initial   value.State
	Resulting value.State
	// ResultEntry is the execution state after the session: the entry
	// procedure for the next session (empty if the agent finished).
	ResultEntry string
	// Input is the ordered input log of the session.
	Input []agentlang.InputRecord
	// Trace is the execution trace, present only if the host records
	// traces.
	Trace trace.Trace
	// Outputs lists the output actions performed.
	Outputs []ActionRecord
	// Outcome is how the session ended.
	Outcome agentlang.Outcome

	// Memoized state digests: several mechanisms digest the same
	// finalized record (refproto signs both states, vigna and proof the
	// resulting one), so each state is hashed at most once per session.
	digMu           sync.Mutex
	initDig, resDig canon.Digest
	initOK, resOK   bool
}

// InitialDigest returns the canonical digest of the initial state,
// memoized on first use. Call only once the record is finalized.
func (r *SessionRecord) InitialDigest() canon.Digest {
	r.digMu.Lock()
	defer r.digMu.Unlock()
	if !r.initOK {
		r.initDig = canon.HashState(r.Initial)
		r.initOK = true
	}
	return r.initDig
}

// ResultingDigest returns the canonical digest of the resulting state,
// memoized on first use. Call only once the record is finalized.
func (r *SessionRecord) ResultingDigest() canon.Digest {
	r.digMu.Lock()
	defer r.digMu.Unlock()
	if !r.resOK {
		r.resDig = canon.HashState(r.Resulting)
		r.resOK = true
	}
	return r.resDig
}

// CloneInput returns a deep copy of the input log.
func (r *SessionRecord) CloneInput() []agentlang.InputRecord {
	out := make([]agentlang.InputRecord, len(r.Input))
	for i, rec := range r.Input {
		out[i] = rec.Clone()
	}
	return out
}

// SessionOptions tunes one session run.
type SessionOptions struct {
	// ExtraHook is chained after trace recording; used by the benchmark
	// harness for per-procedure phase timing.
	ExtraHook agentlang.Hook
}

// RunSession executes one session of the agent on this host: validates
// the agent, snapshots the initial state, runs the entry procedure with
// recording, applies malicious behaviour if configured, and advances
// the agent's execution state (entry, hop, route).
//
// ctx gates session admission: a session never starts under a done
// context. The execution itself is bounded by fuel, not ctx — an
// admitted session runs to completion so the platform never observes a
// half-executed state.
//
// The agent is mutated in place. The returned record holds deep
// snapshots, so later mutation of the agent cannot alter it.
func (h *Host) RunSession(ctx context.Context, ag *agent.Agent, opts SessionOptions) (*SessionRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("host %s: session admission: %w", h.cfg.Name, err)
	}
	if err := ag.Validate(); err != nil {
		return nil, fmt.Errorf("%w by %s: %v", ErrRefused, h.cfg.Name, err)
	}
	prog, err := ag.Program()
	if err != nil {
		return nil, fmt.Errorf("%w by %s: %v", ErrRefused, h.cfg.Name, err)
	}

	rec := &SessionRecord{
		HostName: h.cfg.Name,
		AgentID:  ag.ID,
		Hop:      ag.Hop,
		Entry:    ag.Entry,
		Initial:  ag.State.Snapshot(),
	}

	// Build the environment stack: base host env -> (malicious wrapper)
	// -> input recorder. The recorder sits outermost so the input log
	// reflects what the agent actually received — including forged
	// values; a lying host instead tampers the record afterwards
	// (TamperRecord), which is the attack the mechanisms cannot detect
	// (§4.2).
	var env agentlang.Env = &hostEnv{h: h, agentID: ag.ID}
	if h.cfg.Behavior != nil {
		env = h.cfg.Behavior.WrapEnv(env)
	}
	recEnv := &agentlang.RecordingEnv{Inner: env}

	var hook agentlang.Hook
	var tracer *trace.Recorder
	if h.cfg.RecordTrace {
		tracer = trace.NewRecorder()
		hook = tracer
	}
	if opts.ExtraHook != nil {
		if hook == nil {
			hook = opts.ExtraHook
		} else {
			hook = multiHook{hook, opts.ExtraHook}
		}
	}

	outcome, err := agentlang.Run(prog, ag.Entry, ag.State, recEnv, agentlang.Options{
		Fuel: h.cfg.Fuel,
		Hook: hook,
	})
	if err != nil {
		return nil, fmt.Errorf("host %s: session hop %d: %w", h.cfg.Name, ag.Hop, err)
	}

	if h.cfg.Behavior != nil {
		h.cfg.Behavior.TamperState(ag.State)
	}
	// The interpreter (and a malicious Behavior) wrote the state map
	// directly; drop the memoized digest before anyone reads it.
	ag.InvalidateStateDigest()

	rec.Outcome = outcome
	rec.Input = recEnv.Records
	rec.Resulting = ag.State.Snapshot()
	if tracer != nil {
		rec.Trace = tracer.Take()
		h.traces.Put(ag.ID, ag.Hop, rec.Trace)
	}
	rec.Outputs = h.Actions(ag.ID)

	// Advance the agent's execution state.
	ag.Route = append(ag.Route, h.cfg.Name)
	ag.Hop++
	if outcome.Kind == agentlang.OutcomeMigrated {
		if !prog.HasProc(outcome.MigrateEntry) {
			return nil, fmt.Errorf("host %s: agent migrates to unknown entry %q", h.cfg.Name, outcome.MigrateEntry)
		}
		ag.Entry = outcome.MigrateEntry
		rec.ResultEntry = outcome.MigrateEntry
	} else {
		ag.Entry = ""
		rec.ResultEntry = ""
	}

	if h.cfg.Behavior != nil {
		h.cfg.Behavior.TamperRecord(rec)
	}
	return rec, nil
}

// hostEnv adapts the host to the agentlang environment interface.
type hostEnv struct {
	h       *Host
	agentID string
}

var _ agentlang.Env = (*hostEnv)(nil)

func (e *hostEnv) Input(call string, args []value.Value) (value.Value, error) {
	h := e.h
	switch call {
	case "read":
		key := args[0]
		if key.Kind != value.KindString {
			return value.Null(), fmt.Errorf("read key must be string, got %s", key.Kind)
		}
		if h.cfg.Feed != nil {
			return h.cfg.Feed(e.agentID, key.Str)
		}
		if v, ok := h.cfg.Resources[key.Str]; ok {
			return v.Clone(), nil
		}
		return value.Null(), fmt.Errorf("host %s has no input for key %q", h.cfg.Name, key.Str)
	case "resource":
		key := args[0]
		if key.Kind != value.KindString {
			return value.Null(), fmt.Errorf("resource key must be string, got %s", key.Kind)
		}
		if v, ok := h.cfg.Resources[key.Str]; ok {
			return v.Clone(), nil
		}
		return value.Null(), fmt.Errorf("host %s has no resource %q", h.cfg.Name, key.Str)
	case "recv":
		msg := value.Null() // empty mailbox reads as null
		// Probe before popping: Upsert inserts on miss, and a read of
		// an agent that was never messaged must not grow the store.
		if q, ok := h.mailbox.Get(e.agentID); !ok || len(q) == 0 {
			return msg, nil
		}
		h.mailbox.Upsert(e.agentID, func(q []value.Value, _ bool) []value.Value {
			if len(q) == 0 {
				return q
			}
			msg = q[0]
			return q[1:]
		})
		return msg, nil
	case "time":
		if h.cfg.Clock != nil {
			return value.Int(h.cfg.Clock()), nil
		}
		h.mu.Lock()
		defer h.mu.Unlock()
		h.clockN++
		return value.Int(1_000_000_000 + h.clockN), nil
	case "rand":
		n := args[0]
		if n.Kind != value.KindInt || n.Int <= 0 {
			return value.Null(), fmt.Errorf("rand bound must be a positive int")
		}
		h.mu.Lock()
		defer h.mu.Unlock()
		// xorshift64*: deterministic per host, recorded as input.
		h.randSt ^= h.randSt >> 12
		h.randSt ^= h.randSt << 25
		h.randSt ^= h.randSt >> 27
		r := h.randSt * 0x2545F4914F6CDD1D
		return value.Int(int64(r % uint64(n.Int))), nil
	case "here":
		return value.Str(h.cfg.Name), nil
	default:
		return value.Null(), fmt.Errorf("unknown input external %q", call)
	}
}

func (e *hostEnv) Output(action string, args []value.Value) error {
	h := e.h
	cloned := make([]value.Value, len(args))
	for i, a := range args {
		cloned[i] = a.Clone()
	}
	h.actions.Upsert(e.agentID, func(recs []ActionRecord, _ bool) []ActionRecord {
		return append(recs, ActionRecord{Action: action, Args: cloned})
	})
	if h.cfg.Sink != nil {
		return h.cfg.Sink(e.agentID, action, args)
	}
	return nil
}

// multiHook fans hook events out to two hooks.
type multiHook [2]agentlang.Hook

var _ agentlang.Hook = multiHook{}

func (m multiHook) Statement(id int, usedInput bool, assigned []agentlang.Assignment) {
	m[0].Statement(id, usedInput, assigned)
	m[1].Statement(id, usedInput, assigned)
}
func (m multiHook) EnterProc(name string) { m[0].EnterProc(name); m[1].EnterProc(name) }
func (m multiHook) ExitProc(name string)  { m[0].ExitProc(name); m[1].ExitProc(name) }
