package host

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/agentlang"
	"repro/internal/sigcrypto"
	"repro/internal/value"
)

func newHost(t *testing.T, name string, mut func(*Config)) *Host {
	t.Helper()
	keys, err := sigcrypto.GenerateKeyPair(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name:     name,
		Keys:     keys,
		Registry: sigcrypto.NewRegistry(),
	}
	if mut != nil {
		mut(&cfg)
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func newAgent(t *testing.T, code, entry string) *agent.Agent {
	t.Helper()
	a, err := agent.New("ag-1", "alice", code, entry)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	keys, err := sigcrypto.GenerateKeyPair("h")
	if err != nil {
		t.Fatal(err)
	}
	reg := sigcrypto.NewRegistry()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty name", Config{Keys: keys, Registry: reg}},
		{"nil keys", Config{Name: "h", Registry: reg}},
		{"nil registry", Config{Name: "h", Keys: keys}},
		{"key mismatch", Config{Name: "other", Keys: keys, Registry: reg}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestNewRegistersKey(t *testing.T) {
	h := newHost(t, "alpha", nil)
	if !h.Registry().Known("alpha") {
		t.Error("host key not registered")
	}
}

func TestRunSessionBasics(t *testing.T) {
	h := newHost(t, "h1", func(c *Config) {
		c.Resources = map[string]value.Value{"price": value.Int(42)}
	})
	ag := newAgent(t, `
proc main() {
    offer = read("price")
    where = here()
    migrate("h2", "next")
}
proc next() { done() }`, "main")

	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HostName != "h1" || rec.AgentID != "ag-1" || rec.Hop != 0 {
		t.Errorf("record metadata: %+v", rec)
	}
	if len(rec.Initial) != 0 {
		t.Errorf("initial state not empty: %v", rec.Initial)
	}
	if rec.Resulting["offer"].Int != 42 || rec.Resulting["where"].Str != "h1" {
		t.Errorf("resulting state: %v", rec.Resulting)
	}
	if len(rec.Input) != 2 {
		t.Errorf("input log has %d records, want 2", len(rec.Input))
	}
	if rec.Outcome.Kind != agentlang.OutcomeMigrated {
		t.Error("outcome not migrated")
	}
	// Agent execution state advanced.
	if ag.Hop != 1 || ag.Entry != "next" {
		t.Errorf("agent state: hop=%d entry=%q", ag.Hop, ag.Entry)
	}
	if len(ag.Route) != 1 || ag.Route[0] != "h1" {
		t.Errorf("route: %v", ag.Route)
	}
}

func TestRunSessionSnapshotsAreIsolated(t *testing.T) {
	// Records are copy-on-write snapshots: later mutation of the agent
	// through any platform write path — a further session's indexed
	// writes, Agent.SetVar — must not leak into a returned record.
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `
proc main() { xs = [1] migrate("h1", "second") }
proc second() { xs[0] = 99 done() }`, "main")
	rec1, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Resulting["xs"].List[0].Int != 99 {
		t.Error("second session's write lost")
	}
	if rec1.Resulting["xs"].List[0].Int != 1 {
		t.Error("first record shares storage with live agent state")
	}
	if rec2.Initial["xs"].List[0].Int != 1 {
		t.Error("second record's initial snapshot saw the session's own write")
	}
	ag.SetVar("xs", value.List(value.Int(7)))
	if rec2.Resulting["xs"].List[0].Int != 99 {
		t.Error("SetVar leaked into record")
	}
}

func TestRunSessionRefusesInvalidAgent(t *testing.T) {
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `proc main() { done() }`, "main")
	ag.Code = `proc main() { hacked = 1 }` // digest now mismatches
	_, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if !errors.Is(err, ErrRefused) {
		t.Errorf("err = %v, want ErrRefused", err)
	}
}

func TestRunSessionUnknownMigrateEntry(t *testing.T) {
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `proc main() { migrate("x", "ghost") }`, "main")
	if _, err := h.RunSession(context.Background(), ag, SessionOptions{}); err == nil {
		t.Error("migrate to unknown entry accepted")
	}
}

func TestAgentTerminates(t *testing.T) {
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `proc main() { x = 1 }`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome.Kind != agentlang.OutcomeDone || ag.Entry != "" || rec.ResultEntry != "" {
		t.Error("termination not reflected")
	}
}

// TestMailboxBounded pins the overflow contract: a hostile peer
// cannot grow a host's memory without limit — Deliver fails with
// ErrMailboxFull at the configured bound, and draining via recv()
// reopens capacity.
func TestMailboxBounded(t *testing.T) {
	h := newHost(t, "h1", func(c *Config) { c.MailboxLimit = 2 })
	if err := h.Deliver("ag", value.Str("m1")); err != nil {
		t.Fatal(err)
	}
	if err := h.Deliver("ag", value.Str("m2")); err != nil {
		t.Fatal(err)
	}
	err := h.Deliver("ag", value.Str("m3"))
	if !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("overflow: err = %v, want ErrMailboxFull", err)
	}
	// Other agents' mailboxes are unaffected by one agent's overflow.
	if err := h.Deliver("other", value.Str("ok")); err != nil {
		t.Errorf("unrelated mailbox rejected: %v", err)
	}
	// Draining reopens capacity.
	ag := newAgent(t, `proc main() { a = recv() }`, "main")
	ag.ID = "ag"
	if _, err := h.RunSession(context.Background(), ag, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Deliver("ag", value.Str("m3")); err != nil {
		t.Errorf("after drain: %v", err)
	}
}

func TestMailbox(t *testing.T) {
	h := newHost(t, "h1", nil)
	for _, d := range []struct {
		agent string
		msg   string
	}{{"ag-1", "offer-1"}, {"ag-1", "offer-2"}, {"other", "not-yours"}} {
		if err := h.Deliver(d.agent, value.Str(d.msg)); err != nil {
			t.Fatalf("Deliver(%s, %s): %v", d.agent, d.msg, err)
		}
	}
	ag := newAgent(t, `
proc main() {
    a = recv()
    b = recv()
    c = recv()
}`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Resulting["a"].Str != "offer-1" || rec.Resulting["b"].Str != "offer-2" {
		t.Errorf("mailbox order wrong: %v", rec.Resulting)
	}
	if !rec.Resulting["c"].IsNull() {
		t.Errorf("empty mailbox should read null, got %s", rec.Resulting["c"])
	}
}

func TestTimeAndRandAreRecordedInput(t *testing.T) {
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `
proc main() {
    t1 = time()
    t2 = time()
    r = rand(100)
}`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Input) != 3 {
		t.Fatalf("input log: %d records, want 3", len(rec.Input))
	}
	if rec.Resulting["t2"].Int <= rec.Resulting["t1"].Int {
		t.Error("default clock not monotonic")
	}
	r := rec.Resulting["r"].Int
	if r < 0 || r >= 100 {
		t.Errorf("rand(100) = %d out of range", r)
	}
}

func TestCustomClockAndFeed(t *testing.T) {
	h := newHost(t, "h1", func(c *Config) {
		c.Clock = func() int64 { return 777 }
		c.Feed = func(agentID, key string) (value.Value, error) {
			return value.Str("fed:" + key), nil
		}
	})
	ag := newAgent(t, `proc main() { t = time() v = read("k") }`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Resulting["t"].Int != 777 || rec.Resulting["v"].Str != "fed:k" {
		t.Errorf("custom clock/feed: %v", rec.Resulting)
	}
}

func TestReadMissingKeyFails(t *testing.T) {
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `proc main() { v = read("missing") }`, "main")
	if _, err := h.RunSession(context.Background(), ag, SessionOptions{}); err == nil {
		t.Error("missing input key did not fail the session")
	}
}

func TestResourceCloneIsolation(t *testing.T) {
	res := value.List(value.Int(1))
	h := newHost(t, "h1", func(c *Config) {
		c.Resources = map[string]value.Value{"db": res}
	})
	ag := newAgent(t, `proc main() { xs = resource("db") xs[0] = 99 }`, "main")
	if _, err := h.RunSession(context.Background(), ag, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if res.List[0].Int != 1 {
		t.Error("agent mutated the host's resource store")
	}
}

func TestActionsLedgerAndSink(t *testing.T) {
	var sunk []string
	h := newHost(t, "h1", func(c *Config) {
		c.Sink = func(agentID, action string, args []value.Value) error {
			sunk = append(sunk, action)
			return nil
		}
	})
	ag := newAgent(t, `
proc main() {
    send("partner", "hello")
    act("buy", "book", 42)
}`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acts := h.Actions("ag-1")
	if len(acts) != 2 || acts[0].Action != "send" || acts[1].Action != "act" {
		t.Errorf("ledger = %+v", acts)
	}
	if len(rec.Outputs) != 2 {
		t.Errorf("record outputs = %+v", rec.Outputs)
	}
	if len(sunk) != 2 {
		t.Errorf("sink saw %v", sunk)
	}
}

func TestSinkErrorAbortsSession(t *testing.T) {
	h := newHost(t, "h1", func(c *Config) {
		c.Sink = func(agentID, action string, args []value.Value) error {
			return errors.New("payment rejected")
		}
	})
	ag := newAgent(t, `proc main() { act("buy", "x") }`, "main")
	_, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err == nil || !strings.Contains(err.Error(), "payment rejected") {
		t.Errorf("sink error not propagated: %v", err)
	}
}

func TestTraceRecording(t *testing.T) {
	h := newHost(t, "h1", func(c *Config) {
		c.RecordTrace = true
		c.Resources = map[string]value.Value{"k": value.Int(5)}
	})
	ag := newAgent(t, `
proc main() {
    x = read("k")
    y = x + 1
}`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Trace.Len() != 2 {
		t.Fatalf("trace length %d, want 2", rec.Trace.Len())
	}
	stored, ok := h.Traces().Get("ag-1", 0)
	if !ok || stored.Digest() != rec.Trace.Digest() {
		t.Error("trace not retained in store")
	}
}

func TestNoTraceByDefault(t *testing.T) {
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `proc main() { x = 1 }`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Trace.Len() != 0 || h.Traces().Len() != 0 {
		t.Error("trace recorded without RecordTrace")
	}
}

// flagBehavior exercises all three tamper points.
type flagBehavior struct {
	wrapped  bool
	tampered bool
	lied     bool
}

func (b *flagBehavior) WrapEnv(env agentlang.Env) agentlang.Env { b.wrapped = true; return env }
func (b *flagBehavior) TamperState(st value.State) {
	b.tampered = true
	st["injected"] = value.Int(666)
}
func (b *flagBehavior) TamperRecord(rec *SessionRecord) {
	b.lied = true
	rec.Resulting = rec.Resulting.Clone()
}

func TestBehaviorHooksCalled(t *testing.T) {
	beh := &flagBehavior{}
	h := newHost(t, "evil", func(c *Config) { c.Behavior = beh })
	ag := newAgent(t, `proc main() { x = 1 }`, "main")
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !beh.wrapped || !beh.tampered || !beh.lied {
		t.Errorf("behavior hooks: wrapped=%v tampered=%v lied=%v", beh.wrapped, beh.tampered, beh.lied)
	}
	if ag.State["injected"].Int != 666 {
		t.Error("TamperState changes not applied to agent")
	}
	if rec.Resulting["injected"].Int != 666 {
		t.Error("tampered state not in record")
	}
}

// phaseHook counts proc enters for the ExtraHook path.
type phaseHook struct{ enters int }

func (p *phaseHook) Statement(int, bool, []agentlang.Assignment) {}
func (p *phaseHook) EnterProc(string)                            { p.enters++ }
func (p *phaseHook) ExitProc(string)                             {}

func TestExtraHookAloneAndCombined(t *testing.T) {
	for _, withTrace := range []bool{false, true} {
		ph := &phaseHook{}
		h := newHost(t, "h1", func(c *Config) { c.RecordTrace = withTrace })
		ag := newAgent(t, `proc sub() { return 1 } proc main() { x = sub() }`, "main")
		if _, err := h.RunSession(context.Background(), ag, SessionOptions{ExtraHook: ph}); err != nil {
			t.Fatal(err)
		}
		if ph.enters != 2 {
			t.Errorf("withTrace=%v: EnterProc count = %d, want 2", withTrace, ph.enters)
		}
	}
}

func TestSequentialSessionsOnSameHost(t *testing.T) {
	// An agent migrating back to the same host gets a fresh session with
	// hop bookkeeping intact.
	h := newHost(t, "h1", nil)
	ag := newAgent(t, `
proc main() { n = 1 migrate("h1", "again") }
proc again() { n = n + 1 done() }`, "main")
	if _, err := h.RunSession(context.Background(), ag, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	rec, err := h.RunSession(context.Background(), ag, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Hop != 1 || rec.Resulting["n"].Int != 2 {
		t.Errorf("second session: hop=%d n=%s", rec.Hop, rec.Resulting["n"])
	}
	if len(ag.Route) != 2 {
		t.Errorf("route = %v", ag.Route)
	}
}
