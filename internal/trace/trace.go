// Package trace implements execution traces in the sense of Vigna's
// "Cryptographic Traces for Mobile Agents" as analysed by the paper
// (§3.3, Fig. 3): a trace is a sequence of pairs (n, s) where n is the
// identifier of the executed statement and s — present only when the
// statement modified agent state using information from outside the
// agent — lists the variable/value pairs after the statement.
//
// Traces are the most detailed form of "execution log" reference data
// (§3.5). A host retains its trace locally and forwards only a signed
// commitment (hash) of it; during an audit the owner fetches the trace,
// checks it against the commitment, and re-executes.
package trace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/agentlang"
	"repro/internal/canon"
	"repro/internal/shardstore"
	"repro/internal/value"
)

// Binding is one variable/value pair recorded in a trace entry.
type Binding struct {
	Name string
	Val  value.Value
}

// Entry is one executed statement. Bindings is nil for statements that
// did not consume external input (the "modified trace" optimisation the
// paper discusses keeps identifiers; we keep them too because the audit
// protocol uses them for human-readable evidence, and they cost little).
type Entry struct {
	StmtID   int
	Bindings []Binding
}

// Trace is the execution protocol of one session.
type Trace struct {
	Entries []Entry
}

// Recorder is an agentlang.Hook that appends trace entries during
// execution. Statements that consumed input record their bindings, all
// others only their identifier.
type Recorder struct {
	trace Trace
}

var _ agentlang.Hook = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Statement implements agentlang.Hook.
func (r *Recorder) Statement(stmtID int, usedInput bool, assigned []agentlang.Assignment) {
	e := Entry{StmtID: stmtID}
	if usedInput && len(assigned) > 0 {
		e.Bindings = make([]Binding, len(assigned))
		for i, a := range assigned {
			e.Bindings[i] = Binding{Name: a.Name, Val: a.Val.Clone()}
		}
	}
	r.trace.Entries = append(r.trace.Entries, e)
}

// EnterProc implements agentlang.Hook.
func (r *Recorder) EnterProc(string) {}

// ExitProc implements agentlang.Hook.
func (r *Recorder) ExitProc(string) {}

// Take returns the recorded trace and resets the recorder.
func (r *Recorder) Take() Trace {
	t := r.trace
	r.trace = Trace{}
	return t
}

// Len returns the number of entries.
func (t Trace) Len() int { return len(t.Entries) }

// Digest returns the canonical digest of the whole trace, streamed into
// a pooled SHA-256 state: even a 10^5-entry trace digests without
// materializing its encoding. The encoding frames every entry, so
// traces with shifted boundaries cannot collide.
func (t Trace) Digest() canon.Digest {
	total := 0
	for _, e := range t.Entries {
		total += entrySize(e)
	}
	x := canon.AcquireHasher()
	defer canon.ReleaseHasher(x)
	x.TupleHeader(2)
	x.StringField("trace")
	x.BeginField(total)
	for _, e := range t.Entries {
		streamEntry(x, e)
	}
	return x.Sum()
}

// EntryDigest returns the canonical digest of a single entry, used as a
// Merkle leaf by the proof mechanism. Building a Merkle tree over a
// long trace calls this once per statement, so it streams too.
func EntryDigest(e Entry) canon.Digest {
	x := canon.AcquireHasher()
	defer canon.ReleaseHasher(x)
	streamEntry(x, e)
	return x.Sum()
}

// entrySize returns the exact byte length of one entry's tuple framing.
func entrySize(e Entry) int {
	n := 2 + 4 + 4 + decimalLen(e.StmtID)
	for _, b := range e.Bindings {
		n += 4 + len(b.Name) + 4 + 1 + canon.SizeValue(b.Val)
	}
	return n
}

func decimalLen(n int) int {
	var buf [20]byte
	return len(strconv.AppendInt(buf[:0], int64(n), 10))
}

// streamEntry writes the entry's tuple framing — byte-identical to
// Tuple(stmtID, name, EncodeValue(val), ...) — into the hasher.
func streamEntry(x *canon.Hasher, e Entry) {
	x.TupleHeader(1 + 2*len(e.Bindings))
	x.IntField(int64(e.StmtID))
	for _, b := range e.Bindings {
		x.StringField(b.Name)
		x.ValueField(b.Val)
	}
}

// Marshal serializes the trace for network transfer (audit fetches).
func (t Trace) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireTrace{Entries: toWire(t.Entries)}); err != nil {
		return nil, fmt.Errorf("trace: encoding: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a serialized trace.
func Unmarshal(data []byte) (Trace, error) {
	var w wireTrace
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return Trace{}, fmt.Errorf("trace: decoding: %w", err)
	}
	return Trace{Entries: fromWire(w.Entries)}, nil
}

// wire types: bindings travel in canonical encoding to keep the gob
// surface small and deterministic.
type wireTrace struct {
	Entries []wireEntry
}

type wireEntry struct {
	StmtID  int
	Names   []string
	ValsEnc [][]byte
}

func toWire(entries []Entry) []wireEntry {
	out := make([]wireEntry, len(entries))
	for i, e := range entries {
		we := wireEntry{StmtID: e.StmtID}
		for _, b := range e.Bindings {
			we.Names = append(we.Names, b.Name)
			we.ValsEnc = append(we.ValsEnc, canon.EncodeValue(b.Val))
		}
		out[i] = we
	}
	return out
}

func fromWire(entries []wireEntry) []Entry {
	out := make([]Entry, len(entries))
	for i, we := range entries {
		e := Entry{StmtID: we.StmtID}
		for j := range we.Names {
			v, err := canon.DecodeValue(we.ValsEnc[j])
			if err != nil {
				// A malformed binding decodes to null; the digest check
				// against the commitment will fail, which is the correct
				// outcome for tampered data.
				v = value.Null()
			}
			e.Bindings = append(e.Bindings, Binding{Name: we.Names[j], Val: v})
		}
		out[i] = e
	}
	return out
}

// Format renders the trace in the style of Fig. 3b: one line per entry,
// "<stmtID>" alone or "<stmtID> <var>=<value> ...". prog may be nil; if
// given, the statement text is appended as a comment.
func (t Trace) Format(prog *agentlang.Program) string {
	var b strings.Builder
	for _, e := range t.Entries {
		fmt.Fprintf(&b, "%d", e.StmtID)
		for _, bind := range e.Bindings {
			fmt.Fprintf(&b, " %s=%s", bind.Name, bind.Val)
		}
		if prog != nil {
			if text := prog.StatementText(e.StmtID); text != "" {
				fmt.Fprintf(&b, "    # %s", text)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Store retains traces per (agent, hop) for later audit, as Vigna's
// protocol requires each host to do ("the trace itself has to be
// stored by the host"). It is safe for concurrent use; sessions of
// distinct agents land on distinct stripes of a sharded store, so
// trace retention never serializes a host's worker pool on one mutex.
type Store struct {
	traces *shardstore.Store[Trace]
}

// NewStore returns an empty, unbounded trace store.
func NewStore() *Store { return NewBoundedStore(0) }

// NewBoundedStore returns a trace store that retains at most capacity
// traces, evicting the oldest beyond it (0 means unbounded). An
// evicted trace makes the host unable to answer a later audit fetch
// for that session — deployments bounding retention trade audit depth
// for memory.
func NewBoundedStore(capacity int) *Store {
	return &Store{traces: shardstore.New[Trace](shardstore.Config[Trace]{Capacity: capacity})}
}

// storeKey composes the (agent, hop) key. Agent IDs never contain NUL,
// which keeps the composition injective.
func storeKey(agentID string, hop int) string {
	return shardstore.Key(agentID, strconv.Itoa(hop))
}

// Put retains the trace for the given agent session.
func (s *Store) Put(agentID string, hop int, t Trace) {
	s.traces.Put(storeKey(agentID, hop), t)
}

// Get returns the retained trace, if any.
func (s *Store) Get(agentID string, hop int) (Trace, bool) {
	return s.traces.Get(storeKey(agentID, hop))
}

// Len returns the number of retained traces.
func (s *Store) Len() int { return s.traces.Len() }
