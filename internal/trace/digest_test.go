package trace

import (
	"fmt"
	"repro/internal/testutil"
	"testing"

	"repro/internal/canon"
	"repro/internal/value"
)

// materializedEntry reproduces the seed's encode-then-hash entry
// framing; the streamed digests must stay byte-compatible with it
// because trace commitments cross host boundaries.
func materializedEntry(e Entry) []byte {
	fields := make([][]byte, 0, 1+2*len(e.Bindings))
	fields = append(fields, []byte(fmt.Sprintf("%d", e.StmtID)))
	for _, b := range e.Bindings {
		fields = append(fields, []byte(b.Name), canon.EncodeValue(b.Val))
	}
	return canon.Tuple(fields...)
}

func digestTrace() Trace {
	return Trace{Entries: []Entry{
		{StmtID: 1},
		{StmtID: 42, Bindings: []Binding{
			{Name: "x", Val: value.Int(7)},
			{Name: "xs", Val: value.List(value.Str("abc"), value.Map(map[string]value.Value{"k": value.Bool(true)}))},
		}},
		{StmtID: 123456789},
	}}
}

func TestEntryDigestMatchesMaterialized(t *testing.T) {
	for i, e := range digestTrace().Entries {
		if got, want := EntryDigest(e), canon.HashBytes(materializedEntry(e)); got != want {
			t.Errorf("entry %d: streamed %s != materialized %s", i, got, want)
		}
	}
}

func TestTraceDigestMatchesMaterialized(t *testing.T) {
	tr := digestTrace()
	var buf []byte
	for _, e := range tr.Entries {
		buf = append(buf, materializedEntry(e)...)
	}
	want := canon.HashBytes(canon.Tuple([]byte("trace"), buf))
	if got := tr.Digest(); got != want {
		t.Errorf("streamed %s != materialized %s", got, want)
	}
	// Empty trace still digests the framing deterministically.
	if (Trace{}).Digest() != canon.HashBytes(canon.Tuple([]byte("trace"), nil)) {
		t.Error("empty trace digest diverged")
	}
}

// TestEntryDigestAllocs pins the Merkle-leaf path: building a tree over
// a long trace must not allocate per leaf.
func TestEntryDigestAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation ceilings are not meaningful under the race detector")
	}
	e := digestTrace().Entries[1]
	EntryDigest(e)
	if avg := testing.AllocsPerRun(100, func() { EntryDigest(e) }); avg > 0 {
		t.Errorf("EntryDigest allocs/op = %.1f, want 0", avg)
	}
}
