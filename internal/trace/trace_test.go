package trace

import (
	"strings"
	"testing"

	"repro/internal/agentlang"
	"repro/internal/value"
)

// figure3Env serves the two inputs of the paper's Fig. 3 example:
// read(x) -> 5 and cryptInput -> 2.
type figure3Env struct{ calls int }

func (e *figure3Env) Input(call string, args []value.Value) (value.Value, error) {
	e.calls++
	if e.calls == 1 {
		return value.Int(5), nil
	}
	return value.Int(2), nil
}
func (e *figure3Env) Output(string, []value.Value) error { return nil }

// TestFigure3Trace reproduces the paper's Fig. 3: a five-statement
// fragment whose trace records bindings only for the two statements
// that consumed input.
func TestFigure3Trace(t *testing.T) {
	// Fig. 3a, transliterated. z starts at 1 so y=x+z is well-defined.
	prog := agentlang.MustParse(`
proc main() {
    x = read("x")
    y = x + z
    m = y + 1
    k = read("cryptInput")
    m = m + k
}`)
	rec := NewRecorder()
	g := value.State{"z": value.Int(1)}
	if _, err := agentlang.Run(prog, "main", g, &figure3Env{}, agentlang.Options{Hook: rec}); err != nil {
		t.Fatal(err)
	}
	tr := rec.Take()
	if tr.Len() != 5 {
		t.Fatalf("trace has %d entries, want 5:\n%s", tr.Len(), tr.Format(prog))
	}
	// Statements 1 and 4 (the paper's 10 and 13) consumed input and
	// record bindings; the rest record only identifiers.
	wantBindings := map[int][]Binding{
		1: {{Name: "x", Val: value.Int(5)}},
		4: {{Name: "k", Val: value.Int(2)}},
	}
	for i, e := range tr.Entries {
		want, isInput := wantBindings[e.StmtID]
		if isInput {
			if len(e.Bindings) != len(want) {
				t.Errorf("entry %d (stmt %d): bindings %v, want %v", i, e.StmtID, e.Bindings, want)
				continue
			}
			for j := range want {
				if e.Bindings[j].Name != want[j].Name || !e.Bindings[j].Val.Equal(want[j].Val) {
					t.Errorf("entry %d binding %d = %s=%s, want %s=%s", i, j,
						e.Bindings[j].Name, e.Bindings[j].Val, want[j].Name, want[j].Val)
				}
			}
		} else if len(e.Bindings) != 0 {
			t.Errorf("entry %d (stmt %d) has bindings %v, want none", i, e.StmtID, e.Bindings)
		}
	}
	// Final state must be m = (5+1)+1 + 2 = 9.
	if g["m"].Int != 9 {
		t.Errorf("m = %s, want 9", g["m"])
	}
	// The formatted trace should look like Fig. 3b.
	text := tr.Format(prog)
	if !strings.Contains(text, "x=5") || !strings.Contains(text, "k=2") {
		t.Errorf("formatted trace missing bindings:\n%s", text)
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := Trace{Entries: []Entry{
		{StmtID: 1, Bindings: []Binding{{Name: "x", Val: value.Int(5)}}},
		{StmtID: 2},
	}}
	same := Trace{Entries: []Entry{
		{StmtID: 1, Bindings: []Binding{{Name: "x", Val: value.Int(5)}}},
		{StmtID: 2},
	}}
	if base.Digest() != same.Digest() {
		t.Error("equal traces, different digests")
	}
	variants := []Trace{
		{Entries: []Entry{{StmtID: 1, Bindings: []Binding{{Name: "x", Val: value.Int(6)}}}, {StmtID: 2}}},
		{Entries: []Entry{{StmtID: 1, Bindings: []Binding{{Name: "y", Val: value.Int(5)}}}, {StmtID: 2}}},
		{Entries: []Entry{{StmtID: 1, Bindings: []Binding{{Name: "x", Val: value.Int(5)}}}}},
		{Entries: []Entry{{StmtID: 1, Bindings: []Binding{{Name: "x", Val: value.Int(5)}}}, {StmtID: 3}}},
		{Entries: []Entry{{StmtID: 2}, {StmtID: 1, Bindings: []Binding{{Name: "x", Val: value.Int(5)}}}}},
		{},
	}
	for i, v := range variants {
		if v.Digest() == base.Digest() {
			t.Errorf("variant %d has same digest as base", i)
		}
	}
}

func TestEntryDigestDistinct(t *testing.T) {
	a := EntryDigest(Entry{StmtID: 1})
	b := EntryDigest(Entry{StmtID: 2})
	c := EntryDigest(Entry{StmtID: 1, Bindings: []Binding{{Name: "x", Val: value.Int(1)}}})
	if a == b || a == c || b == c {
		t.Error("entry digests collide")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tr := Trace{Entries: []Entry{
		{StmtID: 7, Bindings: []Binding{
			{Name: "x", Val: value.List(value.Int(1), value.Str("s"))},
			{Name: "y", Val: value.Map(map[string]value.Value{"k": value.Bool(true)})},
		}},
		{StmtID: 8},
		{StmtID: 9, Bindings: []Binding{{Name: "z", Val: value.Null()}}},
	}}
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != tr.Digest() {
		t.Error("digest changed across marshal round trip")
	}
	if _, err := Unmarshal([]byte("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestRecorderClonesBindings(t *testing.T) {
	rec := NewRecorder()
	shared := value.List(value.Int(1))
	rec.Statement(1, true, []agentlang.Assignment{{Name: "xs", Val: shared}})
	shared.List[0] = value.Int(99)
	tr := rec.Take()
	if tr.Entries[0].Bindings[0].Val.List[0].Int != 1 {
		t.Error("recorder shares storage with live values")
	}
}

func TestRecorderTakeResets(t *testing.T) {
	rec := NewRecorder()
	rec.Statement(1, false, nil)
	first := rec.Take()
	if first.Len() != 1 {
		t.Fatalf("first take: %d entries", first.Len())
	}
	second := rec.Take()
	if second.Len() != 0 {
		t.Error("Take did not reset")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	tr := Trace{Entries: []Entry{{StmtID: 1}}}
	s.Put("a1", 0, tr)
	s.Put("a1", 1, Trace{})
	s.Put("a2", 0, tr)
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	got, ok := s.Get("a1", 0)
	if !ok || got.Len() != 1 {
		t.Error("Get failed")
	}
	if _, ok := s.Get("a1", 5); ok {
		t.Error("Get invented a trace")
	}
}

func TestFormatWithoutProgram(t *testing.T) {
	tr := Trace{Entries: []Entry{{StmtID: 3, Bindings: []Binding{{Name: "a", Val: value.Str("v")}}}}}
	text := tr.Format(nil)
	if !strings.Contains(text, `3 a="v"`) {
		t.Errorf("Format(nil) = %q", text)
	}
}
