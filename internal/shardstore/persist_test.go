package shardstore

import (
	"fmt"
	"strconv"
	"testing"
	"time"
)

// intCodec persists int values as decimal strings — small, readable in
// test failures, and exercises a real encode/decode round trip.
var intCodec = Codec[int]{
	Encode: func(v int) ([]byte, error) { return []byte(strconv.Itoa(v)), nil },
	Decode: func(b []byte) (int, error) { return strconv.Atoi(string(b)) },
}

func newPersistentInt(t *testing.T, dir string, cfg Config[int], p PersistConfig[int]) *Store[int] {
	t.Helper()
	if p.Backend == nil {
		w, err := OpenWAL(dir, WALConfig{FlushInterval: -1})
		if err != nil {
			t.Fatalf("OpenWAL: %v", err)
		}
		p.Backend = w
	}
	if p.Codec.Encode == nil {
		p.Codec = intCodec
	}
	s, err := NewPersistent(cfg, p)
	if err != nil {
		t.Fatalf("NewPersistent: %v", err)
	}
	return s
}

func TestPersistentStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := newPersistentInt(t, dir, Config[int]{}, PersistConfig[int]{})
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	s.Put("k7", 700) // overwrite
	s.Delete("k9")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := newPersistentInt(t, dir, Config[int]{}, PersistConfig[int]{})
	defer r.Close()
	if r.Len() != 49 {
		t.Fatalf("reopened Len=%d, want 49", r.Len())
	}
	if v, ok := r.Get("k7"); !ok || v != 700 {
		t.Fatalf("k7=%d,%v after reopen, want 700", v, ok)
	}
	if _, ok := r.Get("k9"); ok {
		t.Fatal("deleted key k9 resurrected after reopen")
	}
	for i := 0; i < 50; i++ {
		if i == 7 || i == 9 {
			continue
		}
		if v, ok := r.Get(fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Fatalf("k%d=%d,%v after reopen, want %d", i, v, ok, i)
		}
	}
}

func TestPersistentStoreAutoCompacts(t *testing.T) {
	dir := t.TempDir()
	s := newPersistentInt(t, dir, Config[int]{}, PersistConfig[int]{CompactEvery: 32})
	// Churn one key far past CompactEvery: the log would hold every
	// overwrite, the snapshot only the final value.
	for i := 0; i < 500; i++ {
		s.Put("hot", i)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, snaps, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshot written despite CompactEvery churn")
	}
	r := newPersistentInt(t, dir, Config[int]{}, PersistConfig[int]{})
	defer r.Close()
	if v, ok := r.Get("hot"); !ok || v != 499 {
		t.Fatalf("hot=%d,%v after compacted reopen, want 499", v, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("Len=%d after compacted reopen, want 1", r.Len())
	}
}

func TestPersistentStoreCapacityEvictionIsDurable(t *testing.T) {
	dir := t.TempDir()
	s := newPersistentInt(t, dir, Config[int]{Capacity: 4}, PersistConfig[int]{})
	for i := 0; i < 12; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	// Eviction order is per-shard FIFO, not strict global FIFO, so the
	// invariant to check is that the reopened state equals the state at
	// close — whichever keys survived the evictions.
	before := map[string]int{}
	s.Range(func(k string, v int) bool { before[k] = v; return true })
	if len(before) != 4 {
		t.Fatalf("live set %v, want 4 entries under capacity 4", before)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := newPersistentInt(t, dir, Config[int]{Capacity: 4}, PersistConfig[int]{})
	defer r.Close()
	after := map[string]int{}
	r.Range(func(k string, v int) bool { after[k] = v; return true })
	if len(after) != len(before) {
		t.Fatalf("reopened live set %v, want %v", after, before)
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("reopened live set %v, want %v", after, before)
		}
	}
}

func TestPersistentStoreReopenedWithSmallerCapacityEvicts(t *testing.T) {
	dir := t.TempDir()
	s := newPersistentInt(t, dir, Config[int]{}, PersistConfig[int]{})
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	evicted := 0
	r := newPersistentInt(t, dir, Config[int]{
		Capacity: 5,
		OnEvict:  func(string, int, Reason) { evicted++ },
	}, PersistConfig[int]{})
	defer r.Close()
	if r.Len() != 5 {
		t.Fatalf("reopened Len=%d, want shrunken capacity 5", r.Len())
	}
	if evicted != 15 {
		t.Fatalf("OnEvict fired %d times during replay, want 15", evicted)
	}
}

func TestTTLVetoedByEvictable(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	s := New(Config[int]{
		TTL: time.Second,
		Now: clock,
		// Odd values are "in flight": they must neither expire nor be
		// swept.
		Evictable: func(_ string, v int) bool { return v%2 == 0 },
	})
	s.Put("even", 2)
	s.Put("odd", 1)
	now = now.Add(2 * time.Second)
	if _, ok := s.Get("even"); ok {
		t.Fatal("expired evictable entry still readable")
	}
	if _, ok := s.Get("odd"); !ok {
		t.Fatal("vetoed entry expired despite Evictable veto")
	}
	if n := s.SweepExpired(); n != 0 {
		t.Fatalf("sweep dropped %d vetoed entries, want 0", n)
	}
}

func TestRefreshOnWriteRestartsTTL(t *testing.T) {
	now := time.Now()
	s := New(Config[int]{
		TTL:            10 * time.Second,
		RefreshOnWrite: true,
		Now:            func() time.Time { return now },
	})
	s.Put("k", 1)
	now = now.Add(8 * time.Second)
	s.Put("k", 2) // refreshes the clock
	now = now.Add(8 * time.Second)
	if v, ok := s.Get("k"); !ok || v != 2 {
		t.Fatalf("k=%d,%v 8s after refresh, want alive with 2", v, ok)
	}
	now = now.Add(3 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("k alive 11s after its last write")
	}
}

func TestSweepExpired(t *testing.T) {
	now := time.Now()
	ttlEvicted := 0
	s := New(Config[int]{
		TTL: time.Second,
		Now: func() time.Time { return now },
		OnEvict: func(_ string, _ int, r Reason) {
			if r == EvictTTL {
				ttlEvicted++
			}
		},
	})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("old%d", i), i)
	}
	now = now.Add(2 * time.Second)
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("new%d", i), i)
	}
	if n := s.SweepExpired(); n != 10 {
		t.Fatalf("sweep dropped %d, want 10", n)
	}
	if ttlEvicted != 10 {
		t.Fatalf("OnEvict(TTL) fired %d times, want 10", ttlEvicted)
	}
	if s.Len() != 3 {
		t.Fatalf("Len=%d after sweep, want 3", s.Len())
	}
}

// countingBackend counts appends; used to pin which operations write.
type countingBackend struct {
	appends int
}

func (b *countingBackend) Replay(func(Op, string, []byte) error) error { return nil }
func (b *countingBackend) Append(Op, string, []byte) error             { b.appends++; return nil }
func (b *countingBackend) Compact(func(emit func(string, []byte) error) error) error {
	return nil
}
func (b *countingBackend) Sync() error  { return nil }
func (b *countingBackend) Close() error { return nil }

func TestGetOrCreateExistingKeyIsAPureRead(t *testing.T) {
	backend := &countingBackend{}
	now := time.Now()
	s, err := NewPersistent(Config[int]{
		TTL:            10 * time.Second,
		RefreshOnWrite: true,
		Now:            func() time.Time { return now },
	}, PersistConfig[int]{Backend: backend, Codec: intCodec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, created := s.GetOrCreate("k", func() int { return 1 }); !created {
		t.Fatal("first GetOrCreate did not create")
	}
	after := backend.appends
	// Polling an existing key must not append to the backend...
	for i := 0; i < 100; i++ {
		if v, created := s.GetOrCreate("k", func() int { return 2 }); created || v != 1 {
			t.Fatalf("GetOrCreate = %d, created=%v", v, created)
		}
	}
	if backend.appends != after {
		t.Fatalf("GetOrCreate on an existing key appended %d records", backend.appends-after)
	}
	// ...and must not refresh the RefreshOnWrite TTL clock: the entry
	// still expires relative to its last real write.
	now = now.Add(11 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("GetOrCreate reads kept a RefreshOnWrite entry alive past its TTL")
	}
}

func TestPersistentStoreSweepIsDurable(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	s := newPersistentInt(t, dir, Config[int]{
		TTL: time.Second,
		Now: func() time.Time { return now },
	}, PersistConfig[int]{})
	s.Put("stale", 1)
	now = now.Add(2 * time.Second)
	s.Put("fresh", 2)
	if n := s.SweepExpired(); n != 1 {
		t.Fatalf("sweep dropped %d, want 1", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := newPersistentInt(t, dir, Config[int]{}, PersistConfig[int]{})
	defer r.Close()
	if _, ok := r.Get("stale"); ok {
		t.Fatal("swept entry resurrected after reopen")
	}
	if _, ok := r.Get("fresh"); !ok {
		t.Fatal("fresh entry lost after reopen")
	}
}
