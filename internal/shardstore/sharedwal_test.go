package shardstore

import (
	"errors"
	"path/filepath"
	"testing"
)

func stringCodec() Codec[string] {
	return Codec[string]{
		Encode: func(s string) ([]byte, error) { return []byte(s), nil },
		Decode: func(b []byte) (string, error) { return string(b), nil },
	}
}

// openSharedStores builds two stores over one SharedWAL, the node
// shape (journal + ledger sharing one fsync stream).
func openSharedStores(t *testing.T, dir string) (*SharedWAL, *Store[string], *Store[string]) {
	t.Helper()
	sw, err := OpenSharedWAL(dir, SharedWALConfig{WAL: WALConfig{FlushInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	openOne := func(name string) *Store[string] {
		h, err := sw.Handle(name)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewPersistent(Config[string]{}, PersistConfig[string]{
			Backend:      h,
			Codec:        stringCodec(),
			CompactEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	return sw, openOne("journal"), openOne("ledger")
}

func TestSharedWALMultiConsumerRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")

	sw, journal, ledger := openSharedStores(t, dir)
	journal.Put("a1", "queued")
	journal.Put("a2", "running")
	ledger.Put("host-1", "0.5")
	journal.Put("a1", "completed")
	journal.Delete("a2")
	ledger.Put("host-2", "0.9")
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: each consumer replays only its own stream.
	sw2, journal2, ledger2 := openSharedStores(t, dir)
	defer func() {
		_ = journal2.Close()
		_ = ledger2.Close()
		_ = sw2.Close()
	}()
	if v, ok := journal2.Get("a1"); !ok || v != "completed" {
		t.Fatalf("journal a1 = %q, %v; want completed", v, ok)
	}
	if _, ok := journal2.Get("a2"); ok {
		t.Fatal("journal a2 survived delete")
	}
	if journal2.Len() != 1 {
		t.Fatalf("journal len %d, want 1", journal2.Len())
	}
	if v, ok := ledger2.Get("host-2"); !ok || v != "0.9" {
		t.Fatalf("ledger host-2 = %q, %v", v, ok)
	}
	if ledger2.Len() != 2 {
		t.Fatalf("ledger len %d, want 2", ledger2.Len())
	}
	// Cross-consumer isolation: the journal never sees ledger keys.
	if _, ok := journal2.Get("host-1"); ok {
		t.Fatal("journal leaked a ledger key")
	}
}

func TestSharedWALCompactionSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	sw, journal, ledger := openSharedStores(t, dir)
	for i := 0; i < 50; i++ {
		journal.Put("j", "v")
		ledger.Put("l", "w")
	}
	journal.Delete("j")
	if err := sw.Compact(); err != nil {
		t.Fatal(err)
	}
	// Appends after the compaction land in the fresh segment.
	ledger.Put("post", "compact")
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	sw2, journal2, ledger2 := openSharedStores(t, dir)
	defer func() {
		_ = journal2.Close()
		_ = ledger2.Close()
		_ = sw2.Close()
	}()
	if journal2.Len() != 0 {
		t.Fatalf("journal len %d after delete+compact, want 0", journal2.Len())
	}
	if v, ok := ledger2.Get("post"); !ok || v != "compact" {
		t.Fatalf("post-compaction append lost: %q, %v", v, ok)
	}
	if v, ok := ledger2.Get("l"); !ok || v != "w" {
		t.Fatalf("snapshotted key lost: %q, %v", v, ok)
	}
}

func TestSharedWALAutoCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	sw, err := OpenSharedWAL(dir, SharedWALConfig{
		WAL:          WALConfig{FlushInterval: -1},
		CompactEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sw.Handle("journal")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := h.Append(OpPut, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	// The auto-compaction rotated segments; replay still yields the
	// live state.
	sw2, err := OpenSharedWAL(dir, SharedWALConfig{WAL: WALConfig{FlushInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Close()
	h2, err := sw2.Handle("journal")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = h2.Replay(func(op Op, key string, value []byte) error {
		n++
		if key != "k" || string(value) != "v" {
			t.Fatalf("replayed %q=%q", key, value)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
}

func TestSharedWALHandleClaims(t *testing.T) {
	sw, err := OpenSharedWAL(filepath.Join(t.TempDir(), "wal"), SharedWALConfig{WAL: WALConfig{FlushInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	if _, err := sw.Handle("journal"); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Handle("journal"); err == nil {
		t.Fatal("double claim allowed")
	}
	if _, err := sw.Handle(""); err == nil {
		t.Fatal("empty consumer name allowed")
	}
	if _, err := sw.Handle("a\x1fb"); err == nil {
		t.Fatal("separator in consumer name allowed")
	}
}

func TestSharedWALStats(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	sw, journal, ledger := openSharedStores(t, dir)
	for i := 0; i < 10; i++ {
		journal.Put("j", "v")
	}
	ledger.Put("l", "w")
	if err := sw.Sync(); err != nil {
		t.Fatal(err)
	}
	js, ok := journal.BackendStats()
	if !ok {
		t.Fatal("journal backend has no stats")
	}
	if js.Appends != 10 {
		t.Fatalf("journal appends %d, want 10", js.Appends)
	}
	ls, _ := ledger.BackendStats()
	if ls.Appends != 1 {
		t.Fatalf("ledger appends %d, want 1", ls.Appends)
	}
	total := sw.Stats()
	if total.Appends != 11 {
		t.Fatalf("shared appends %d, want 11", total.Appends)
	}
	if total.Syncs == 0 || total.SyncedRecords != 11 {
		t.Fatalf("shared syncs %d / synced records %d, want >0 / 11", total.Syncs, total.SyncedRecords)
	}
	if total.MeanBatch() <= 0 {
		t.Fatalf("mean batch %v, want > 0", total.MeanBatch())
	}
	_ = journal.Close()
	_ = ledger.Close()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	// Appends after close fail cleanly.
	h, err := sw.Handle("late")
	if h != nil || !errors.Is(err, ErrWALClosed) {
		t.Fatalf("Handle after close: %v, %v", h, err)
	}
}
