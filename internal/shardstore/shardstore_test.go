package shardstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refModel is the observational reference: a plain map behind one
// mutex. The unbounded sharded store must be indistinguishable from it
// under any Get/Put/Delete/Upsert/Len/Range history.
type refModel struct {
	mu sync.Mutex
	m  map[string]int
}

func newRefModel() *refModel { return &refModel{m: make(map[string]int)} }

func (r *refModel) get(k string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.m[k]
	return v, ok
}
func (r *refModel) put(k string, v int) { r.mu.Lock(); defer r.mu.Unlock(); r.m[k] = v }
func (r *refModel) del(k string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[k]
	delete(r.m, k)
	return ok
}
func (r *refModel) length() int { r.mu.Lock(); defer r.mu.Unlock(); return len(r.m) }
func (r *refModel) snapshot() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.m))
	for k, v := range r.m {
		out[k] = v
	}
	return out
}

// TestPropertyEquivalence drives the store and the reference model with
// the same pseudo-random operation sequence and checks every
// observation matches. Sequential: this pins the sequential semantics;
// TestConcurrentStress covers linearizability under -race.
func TestPropertyEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + shards)))
			st := New[int](Config[int]{Shards: shards})
			ref := newRefModel()
			keys := make([]string, 40)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%02d", i)
			}
			for op := 0; op < 20000; op++ {
				k := keys[rng.Intn(len(keys))]
				switch rng.Intn(6) {
				case 0, 1: // put
					v := rng.Intn(1000)
					st.Put(k, v)
					ref.put(k, v)
				case 2: // get
					gv, gok := st.Get(k)
					wv, wok := ref.get(k)
					if gok != wok || gv != wv {
						t.Fatalf("op %d: Get(%q) = (%d,%v), reference (%d,%v)", op, k, gv, gok, wv, wok)
					}
				case 3: // delete
					if got, want := st.Delete(k), ref.del(k); got != want {
						t.Fatalf("op %d: Delete(%q) = %v, reference %v", op, k, got, want)
					}
				case 4: // upsert (increment-or-init)
					got := st.Upsert(k, func(old int, ok bool) int {
						if !ok {
							return 1
						}
						return old + 1
					})
					wv, wok := ref.get(k)
					if !wok {
						wv = 0
					}
					ref.put(k, wv+1)
					if got != wv+1 {
						t.Fatalf("op %d: Upsert(%q) = %d, reference %d", op, k, got, wv+1)
					}
				case 5: // len
					if got, want := st.Len(), ref.length(); got != want {
						t.Fatalf("op %d: Len = %d, reference %d", op, got, want)
					}
				}
			}
			// Final snapshots must agree exactly.
			got := make(map[string]int)
			st.Range(func(k string, v int) bool { got[k] = v; return true })
			want := ref.snapshot()
			if len(got) != len(want) {
				t.Fatalf("final snapshot has %d entries, reference %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("final snapshot: %q = %d, reference %d", k, got[k], v)
				}
			}
		})
	}
}

func TestGetOrCreate(t *testing.T) {
	st := New[string](Config[string]{})
	v, created := st.GetOrCreate("a", func() string { return "first" })
	if !created || v != "first" {
		t.Fatalf("GetOrCreate fresh = (%q, %v), want (first, true)", v, created)
	}
	v, created = st.GetOrCreate("a", func() string { return "second" })
	if created || v != "first" {
		t.Fatalf("GetOrCreate existing = (%q, %v), want (first, false)", v, created)
	}
}

func TestCapacityEviction(t *testing.T) {
	var evicted []string
	st := New[int](Config[int]{
		Shards:   4,
		Capacity: 8,
		OnEvict: func(key string, v int, reason Reason) {
			if reason != EvictCapacity {
				t.Errorf("evicting %q: reason %v, want capacity", key, reason)
			}
			evicted = append(evicted, key)
		},
	})
	for i := 0; i < 32; i++ {
		st.Put(fmt.Sprintf("k%02d", i), i)
	}
	if got := st.Len(); got != 8 {
		t.Fatalf("Len after overflow = %d, want capacity 8", got)
	}
	if len(evicted) != 24 {
		t.Fatalf("%d evictions, want 24", len(evicted))
	}
	// FIFO is approximated per shard: the store must retain a suffix of
	// the insertion order within every shard, i.e. the globally newest
	// entries survive modulo striping skew. Strong global property that
	// must still hold: none of the 8 oldest keys survive a 4x overflow.
	for i := 0; i < 8; i++ {
		if _, ok := st.Get(fmt.Sprintf("k%02d", i)); ok {
			t.Errorf("oldest key k%02d survived 4x overflow", i)
		}
	}
	// Overwriting must not evict or double-count.
	before := st.Len()
	st.Range(func(k string, v int) bool { st.Put(k, v+1); return true })
	if got := st.Len(); got != before {
		t.Fatalf("Len after overwrites = %d, want %d", got, before)
	}
}

func TestEvictableVeto(t *testing.T) {
	pinned := map[string]bool{"k00": true, "k01": true}
	var evicted []string
	st := New[int](Config[int]{
		Shards:    1,
		Capacity:  4,
		Evictable: func(key string, v int) bool { return !pinned[key] },
		OnEvict:   func(key string, v int, reason Reason) { evicted = append(evicted, key) },
	})
	for i := 0; i < 8; i++ {
		st.Put(fmt.Sprintf("k%02d", i), i)
	}
	for _, k := range []string{"k00", "k01"} {
		if _, ok := st.Get(k); !ok {
			t.Errorf("pinned key %s was evicted", k)
		}
	}
	sort.Strings(evicted)
	if want := []string{"k02", "k03", "k04", "k05"}; fmt.Sprint(evicted) != fmt.Sprint(want) {
		t.Errorf("evicted %v, want %v (oldest unpinned first)", evicted, want)
	}
	// Unpin: the next insert may evict the previously pinned entries.
	pinned = map[string]bool{}
	st.Put("k08", 8)
	if got := st.Len(); got != 4 {
		t.Fatalf("Len after unpin = %d, want 4", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	clock := time.Unix(1000, 0)
	var evicted []string
	st := New[int](Config[int]{
		Shards: 2,
		TTL:    10 * time.Second,
		Now:    func() time.Time { return clock },
		OnEvict: func(key string, v int, reason Reason) {
			if reason != EvictTTL {
				t.Errorf("evicting %q: reason %v, want ttl", key, reason)
			}
			evicted = append(evicted, key)
		},
	})
	st.Put("old", 1)
	clock = clock.Add(5 * time.Second)
	st.Put("young", 2)
	clock = clock.Add(6 * time.Second) // old is now 11s, young 6s
	if _, ok := st.Get("old"); ok {
		t.Error("expired entry still readable")
	}
	if v, ok := st.Get("young"); !ok || v != 2 {
		t.Error("unexpired entry lost")
	}
	if fmt.Sprint(evicted) != "[old]" {
		t.Errorf("evicted %v, want [old]", evicted)
	}
	// Upsert over an expired entry sees it as absent.
	clock = clock.Add(20 * time.Second)
	got := st.Upsert("young", func(old int, ok bool) int {
		if ok {
			t.Error("Upsert saw an expired entry as live")
		}
		return 9
	})
	if got != 9 {
		t.Errorf("Upsert stored %d, want 9", got)
	}
}

func TestDeleteThenReinsertFIFO(t *testing.T) {
	st := New[int](Config[int]{Shards: 1, Capacity: 3})
	st.Put("a", 1)
	st.Put("b", 2)
	st.Delete("a")
	st.Put("c", 3)
	st.Put("a", 4) // re-entered at the tail
	st.Put("d", 5) // overflows: must evict b (oldest live), not a
	if _, ok := st.Get("b"); ok {
		t.Error("b survived; re-inserted key did not move to the FIFO tail")
	}
	if v, ok := st.Get("a"); !ok || v != 4 {
		t.Error("re-inserted key a lost")
	}
}

func TestKeyComposite(t *testing.T) {
	if Key("a", "7") == Key("a7") {
		t.Error("composite key collides with concatenation")
	}
	if Key("x") != "x" || Key() != "" {
		t.Error("degenerate key forms wrong")
	}
}

// TestConcurrentStress hammers the store from many goroutines with
// mixed operations; run under -race this checks the striped locking.
// Invariants checked: the store never exceeds capacity by more than the
// in-flight writer count, and every value read was written by someone.
func TestConcurrentStress(t *testing.T) {
	const (
		workers  = 8
		ops      = 5000
		keyslot  = 64
		capLimit = 48
	)
	st := New[int](Config[int]{Shards: 8, Capacity: capLimit})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("k%02d", rng.Intn(keyslot))
				switch rng.Intn(5) {
				case 0, 1:
					st.Put(k, w*ops+i)
				case 2:
					if v, ok := st.Get(k); ok && v < 0 {
						t.Error("read a value nobody wrote")
					}
				case 3:
					st.Upsert(k, func(old int, ok bool) int { return old + 1 })
				case 4:
					st.Delete(k)
				}
				if n := st.Len(); n > capLimit+workers {
					t.Errorf("size %d exceeds capacity %d plus writer slack", n, capLimit)
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	st.Range(func(string, int) bool { total++; return true })
	if total > capLimit {
		t.Errorf("final size %d exceeds capacity %d", total, capLimit)
	}
}

// TestDeleteChurnBoundsOrderQueue pins the FIFO-queue reclamation on
// Put/Delete lifecycles (per-agent scratch state, e.g. gossip's
// verified-entries store): without capacity pressure the eviction scan
// never runs, so Delete itself must keep the order queue's memory
// proportional to the live entry count.
func TestDeleteChurnBoundsOrderQueue(t *testing.T) {
	s := New[int](Config[int]{Shards: 1})
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("churn-%d", i)
		s.Put(k, i)
		if !s.Delete(k) {
			t.Fatalf("delete %q missed", k)
		}
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("store size after churn = %d, want 0", got)
	}
	sh := &s.shards[0]
	sh.mu.Lock()
	queued := len(sh.order) - sh.head
	sh.mu.Unlock()
	if queued > 128 {
		t.Errorf("order queue holds %d records for an empty store", queued)
	}
}
