package shardstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
)

// WAL defaults.
const (
	// DefaultSyncEvery is the fsync batch size when WALConfig.SyncEvery
	// is zero: the file is synced once per this many appended records
	// (and by the background flusher in between), so a burst of writes
	// pays one fsync, not one per record.
	DefaultSyncEvery = 64
	// DefaultFlushInterval is the background flush cadence when
	// WALConfig.FlushInterval is zero: a lone record never sits in the
	// write buffer longer than this before it is flushed and synced.
	DefaultFlushInterval = 100 * time.Millisecond
	// maxRecordBytes bounds one framed record; a corrupt length prefix
	// reads as corruption, not as a request to allocate gigabytes.
	maxRecordBytes = 1 << 27
)

// ErrWALClosed is returned by Append/Sync/Compact on a closed WAL.
var ErrWALClosed = errors.New("shardstore: wal closed")

// ErrCorrupt wraps mid-log corruption found during replay: a record
// whose frame or checksum is invalid and that is *not* the torn tail of
// the final segment. A torn final record is expected after a crash and
// is silently truncated; anything else means the log was damaged at
// rest and replay refuses to guess.
var ErrCorrupt = errors.New("shardstore: wal corrupt")

// WALConfig parameterizes a WAL.
type WALConfig struct {
	// SyncEvery is the number of appended records per fsync batch; 0
	// means DefaultSyncEvery, 1 syncs on every append.
	SyncEvery int
	// FlushInterval is the background flush-and-sync cadence for
	// partially filled batches; 0 means DefaultFlushInterval, negative
	// disables the background flusher (tests that want deterministic
	// sync points call Sync explicitly).
	FlushInterval time.Duration
}

// WAL is the file-backed Backend: append-only CRC-framed segment files
// plus compacted snapshots, all under one directory.
//
// Layout (seq is a monotonically increasing segment number):
//
//	wal-<seq>.log    log segments, records in append order
//	snap-<seq>.snap  snapshot of the full state as of segment seq's
//	                 creation; makes segments numbered below seq dead
//
// Record frame, identical in segments and snapshots:
//
//	uint32 big-endian payload length
//	uint32 big-endian CRC-32 (IEEE) of the payload
//	payload = canon.Tuple(op, key, value)
//
// On open, the final segment's torn tail (a partially written frame
// from a crash mid-append) is truncated away; corruption anywhere else
// fails Replay with ErrCorrupt. Snapshots are written to a temp file
// and renamed into place, so a crash mid-compaction leaves the previous
// snapshot and all segments intact.
type WAL struct {
	dir string
	cfg WALConfig

	mu      sync.Mutex // guards the active segment and counters
	f       *os.File
	w       *bufio.Writer
	seq     int // active segment number
	snapSeq int // latest durable snapshot's segment number; 0 = none
	pending int // records appended since the last sync
	closed  bool
	// firstErr is the first write/sync failure, sticky: after a failed
	// fsync the kernel may have dropped the dirty pages, so retrying
	// would falsely report durability. Every later Append/Sync returns
	// it (surfacing background-flusher failures on the caller's path),
	// and Close folds it in.
	firstErr error

	compactMu sync.Mutex // serializes Compact calls
	// syncMu serializes fsync, segment rotation, and final close, and
	// is never held while w.mu-protected appends need to proceed: the
	// flush-to-OS step runs under w.mu (fast), the fsync itself only
	// under syncMu, so appenders holding a shard lock never wait on
	// disk.
	syncMu sync.Mutex

	flushStop chan struct{}
	flushDone chan struct{}
	// kick asks the flusher for an early off-goroutine sync when a
	// batch fills; Append never fsyncs inline while a flusher runs, so
	// callers holding a shard lock pay a buffered write, not disk I/O.
	kick chan struct{}

	// Lifetime counters (see Stats). Atomics so Stats never contends
	// with the append or sync paths.
	statAppends    atomic.Int64
	statSyncs      atomic.Int64
	statSyncedRecs atomic.Int64
}

// WALStats are lifetime counters for one WAL: how many records were
// appended, how many fsyncs the active segment paid, and how many
// records those fsyncs covered. SyncedRecords/Syncs is the mean group
// size per fsync — the number that makes fsync amortization observable
// instead of inferred.
type WALStats struct {
	Appends       int64 `json:"appends"`
	Syncs         int64 `json:"syncs"`
	SyncedRecords int64 `json:"synced_records"`
}

// MeanBatch is the mean number of records made durable per fsync.
func (s WALStats) MeanBatch() float64 {
	if s.Syncs == 0 {
		return 0
	}
	return float64(s.SyncedRecords) / float64(s.Syncs)
}

// Add accumulates other into s (for summing stats across a fleet).
func (s *WALStats) Add(other WALStats) {
	s.Appends += other.Appends
	s.Syncs += other.Syncs
	s.SyncedRecords += other.SyncedRecords
}

// Stats returns the WAL's lifetime counters. Safe to call concurrently
// with appends and after Close.
func (w *WAL) Stats() WALStats {
	return WALStats{
		Appends:       w.statAppends.Load(),
		Syncs:         w.statSyncs.Load(),
		SyncedRecords: w.statSyncedRecs.Load(),
	}
}

var _ Backend = (*WAL)(nil)

// OpenWAL opens (or creates) a WAL directory, truncates any torn final
// record left by a crash, and readies the latest segment for appending.
// Call Replay before the first Append.
func OpenWAL(dir string, cfg WALConfig) (*WAL, error) {
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = DefaultSyncEvery
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shardstore: opening wal: %w", err)
	}
	segs, snaps, tmps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	// A temp snapshot is a compaction that never completed; the log it
	// meant to replace is still whole, so the temp file is just litter.
	for _, t := range tmps {
		_ = os.Remove(filepath.Join(dir, t))
	}
	w := &WAL{dir: dir, cfg: cfg}
	if len(snaps) > 0 {
		w.snapSeq = snaps[len(snaps)-1]
	}
	w.seq = 1
	if len(segs) > 0 {
		w.seq = segs[len(segs)-1]
		// Only the final segment can legitimately end mid-frame.
		if err := truncateTornTail(filepath.Join(dir, segName(w.seq))); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(w.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("shardstore: opening wal segment: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	if cfg.FlushInterval > 0 {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		w.kick = make(chan struct{}, 1)
		go w.flusher()
	}
	return w, nil
}

// segName and snapName build the on-disk file names for a segment
// number.
func segName(seq int) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq int) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// scanDir lists the directory's segment and snapshot sequence numbers
// (ascending) plus any leftover temp files.
func scanDir(dir string) (segs, snaps []int, tmps []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("shardstore: scanning wal dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			tmps = append(tmps, name)
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if n, perr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")); perr == nil {
				segs = append(segs, n)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if n, perr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")); perr == nil {
				snaps = append(snaps, n)
			}
		}
	}
	sort.Ints(segs)
	sort.Ints(snaps)
	return segs, snaps, tmps, nil
}

// frame appends the framed record to dst.
func frame(dst []byte, op Op, key string, value []byte) []byte {
	payload := canon.Tuple([]byte{byte(op)}, []byte(key), value)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrames streams the valid frames of one file into apply. It
// returns the byte offset just past the last valid frame and whether
// the file ended cleanly (false: a torn or corrupt frame follows the
// offset).
func readFrames(path string, apply func(op Op, key string, value []byte) error) (validEnd int64, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("shardstore: reading wal file: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return off, true, nil
			}
			return off, false, nil // torn header
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n > maxRecordBytes {
			return off, false, nil // nonsense length: corrupt frame
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, false, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, false, nil
		}
		fields, perr := canon.ParseTuple(payload)
		if perr != nil || len(fields) != 3 || len(fields[0]) != 1 {
			return off, false, nil
		}
		if apply != nil {
			// Copy key and value out of the read buffer: apply's
			// consumer outlives this frame.
			val := append([]byte(nil), fields[2]...)
			if err := apply(Op(fields[0][0]), string(fields[1]), val); err != nil {
				return off, false, err
			}
		}
		off += int64(len(hdr)) + int64(n)
	}
}

// truncateTornTail chops a partially written final frame off the
// segment, so the next append starts at a clean frame boundary instead
// of extending garbage. A bad frame is only a torn tail if nothing
// *beyond its own extent* still parses as a valid frame: appends are
// sequential, so a crash can tear the end of the log but can never
// leave acknowledged records beyond the tear. Damage followed by
// further valid frames is at-rest corruption and refuses to open with
// ErrCorrupt rather than silently discarding durable records.
//
// The scan deliberately excludes the failed record's own payload
// region (its extent is known whenever its length header is sane):
// record values carry caller data — for the quarantine store,
// agent-author-controlled bytes — and an embedded fake frame inside a
// torn record's payload must not be able to turn a routine crash
// artifact into a permanent refusal to open.
func truncateTornTail(path string) error {
	validEnd, clean, err := readFrames(path, nil)
	if err != nil {
		return err
	}
	if clean {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("shardstore: scanning wal tail: %w", err)
	}
	// Where may acknowledged records still live? Strictly after the
	// failed record's declared extent when its header is intact; only
	// when the length itself is garbage is the extent unknowable and
	// the scan starts right past the failure point.
	scanFrom := int64(len(data)) // nothing to scan by default
	switch {
	case validEnd+8 > int64(len(data)):
		// Torn header: nothing of the record (or anything after it)
		// ever reached the file.
	case int64(binary.BigEndian.Uint32(data[validEnd:])) <= maxRecordBytes:
		// Sane length: the record's extent is known. If the file ends
		// inside it, the tear is mid-payload and nothing follows; if
		// the payload is fully present (checksum or framing failed),
		// acknowledged records could only live after it.
		scanFrom = validEnd + 8 + int64(binary.BigEndian.Uint32(data[validEnd:]))
	default:
		// Nonsense length: the header itself is damaged, the extent is
		// unknowable — scan everything after the failure point.
		scanFrom = validEnd + 1
	}
	if anyValidFrameIn(data, scanFrom) {
		return fmt.Errorf("%w: %s: damaged record at offset %d precedes valid records", ErrCorrupt, filepath.Base(path), validEnd)
	}
	if err := os.Truncate(path, validEnd); err != nil {
		return fmt.Errorf("shardstore: truncating torn wal tail: %w", err)
	}
	return nil
}

// anyValidFrameIn reports whether any offset at or after from yields a
// complete, checksum-valid, well-formed frame. A CRC-32 plus
// canon-tuple match at a random offset is vanishingly unlikely, so a
// hit means real records survive beyond the damage.
func anyValidFrameIn(data []byte, from int64) bool {
	if from < 0 {
		from = 0
	}
	for off := from; off+8 < int64(len(data)); off++ {
		n := int64(binary.BigEndian.Uint32(data[off:]))
		if n == 0 || n > maxRecordBytes || off+8+n > int64(len(data)) {
			continue
		}
		sum := binary.BigEndian.Uint32(data[off+4:])
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			continue
		}
		if fields, perr := canon.ParseTuple(payload); perr == nil && len(fields) == 3 && len(fields[0]) == 1 {
			return true
		}
	}
	return false
}

// Replay implements Backend: the latest snapshot's records, then every
// log record appended after that snapshot was taken. A torn final
// record has already been truncated at open; corruption anywhere else
// returns ErrCorrupt.
func (w *WAL) Replay(apply func(op Op, key string, value []byte) error) error {
	w.mu.Lock()
	snapSeq, lastSeg := w.snapSeq, w.seq
	w.mu.Unlock()
	if snapSeq > 0 {
		_, clean, err := readFrames(filepath.Join(w.dir, snapName(snapSeq)), apply)
		if err != nil {
			return err
		}
		if !clean {
			// Snapshots are written whole and renamed into place; a bad
			// frame inside one is damage, not a crash artifact.
			return fmt.Errorf("%w: snapshot %s", ErrCorrupt, snapName(snapSeq))
		}
	}
	segs, _, _, err := scanDir(w.dir)
	if err != nil {
		return err
	}
	for _, seq := range segs {
		if seq < snapSeq {
			continue // dead: fully covered by the snapshot
		}
		_, clean, err := readFrames(filepath.Join(w.dir, segName(seq)), apply)
		if err != nil {
			return err
		}
		if !clean && seq != lastSeg {
			return fmt.Errorf("%w: segment %s", ErrCorrupt, segName(seq))
		}
	}
	return nil
}

// Append implements Backend: frame the record into the active
// segment's write buffer. Syncing is batched: with the background
// flusher running, a full batch (SyncEvery records) kicks it for an
// off-goroutine fsync so Append itself never does disk I/O beyond the
// buffered write — callers (store mutations under a shard lock) stay
// fast. With the flusher disabled, full batches sync inline. A prior
// sync failure is sticky and returned to every later Append.
func (w *WAL) Append(op Op, key string, value []byte) error {
	buf := frame(nil, op, key, value)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	if err := w.firstErr; err != nil {
		w.mu.Unlock()
		return err
	}
	if _, err := w.w.Write(buf); err != nil {
		err = fmt.Errorf("shardstore: wal append: %w", err)
		w.firstErr = err
		w.mu.Unlock()
		return err
	}
	w.pending++
	needSync := w.pending >= w.cfg.SyncEvery
	w.mu.Unlock()
	w.statAppends.Add(1)
	if !needSync {
		return nil
	}
	if w.kick != nil {
		select {
		case w.kick <- struct{}{}:
		default: // a kick is already queued
		}
		return nil
	}
	return w.syncNow()
}

// Sync implements Backend: flush the write buffer and fsync the active
// segment. A prior sync failure is sticky (see Append).
func (w *WAL) Sync() error { return w.syncNow() }

// syncNow flushes the write buffer (under w.mu, a fast in-memory move
// to the OS) and fsyncs the segment (under syncMu only, so concurrent
// appends proceed). The first failure is sticky and returned without
// retrying: a failed fsync means the kernel may have dropped the
// dirty pages, and a succeeding retry would lie about durability.
func (w *WAL) syncNow() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncHoldingSyncMu()
}

func (w *WAL) syncHoldingSyncMu() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	if err := w.firstErr; err != nil {
		w.mu.Unlock()
		return err
	}
	if err := w.w.Flush(); err != nil {
		err = fmt.Errorf("shardstore: wal flush: %w", err)
		w.firstErr = err
		w.mu.Unlock()
		return err
	}
	f := w.f
	flushed := w.pending
	w.mu.Unlock()
	// The fsync runs without w.mu; rotation and close are excluded by
	// syncMu, so f cannot be swapped or closed underneath it.
	if err := f.Sync(); err != nil {
		err = fmt.Errorf("shardstore: wal sync: %w", err)
		w.mu.Lock()
		if w.firstErr == nil {
			w.firstErr = err
		}
		w.mu.Unlock()
		return err
	}
	w.statSyncs.Add(1)
	w.statSyncedRecs.Add(int64(flushed))
	w.mu.Lock()
	if w.pending -= flushed; w.pending < 0 {
		w.pending = 0
	}
	w.mu.Unlock()
	return nil
}

// flusher syncs filled batches when kicked and partial batches on a
// timer, so a lone record is durable within FlushInterval even if no
// further appends arrive. Failures are recorded sticky by syncNow and
// surface on the next Append/Sync/Close.
func (w *WAL) flusher() {
	defer close(w.flushDone)
	t := time.NewTicker(w.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-w.kick:
		case <-t.C:
		}
		w.mu.Lock()
		idle := w.closed || w.pending == 0
		w.mu.Unlock()
		if !idle {
			_ = w.syncNow() // recorded in firstErr
		}
	}
}

// Compact implements Backend. It rotates to a fresh segment, streams
// the store's full live state (via write) into a temp snapshot file,
// fsyncs and renames it into place, and only then deletes the segments
// and snapshots the new snapshot made dead — a crash at any point
// leaves a replayable log.
func (w *WAL) Compact(write func(emit func(key string, value []byte) error) error) error {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()

	// Rotate: all records from here on land in the new segment, which
	// the snapshot does not cover and replay therefore keeps. syncMu
	// excludes concurrent fsyncs while the file handle is swapped.
	w.syncMu.Lock()
	if err := w.syncHoldingSyncMu(); err != nil {
		w.syncMu.Unlock()
		return err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.syncMu.Unlock()
		return ErrWALClosed
	}
	// Flush and sync stragglers appended since the fsync above, then
	// retire the old segment. This fsync does hold w.mu, but rotation
	// happens once per CompactEvery records, not per batch.
	if err := w.w.Flush(); err != nil {
		w.mu.Unlock()
		w.syncMu.Unlock()
		return fmt.Errorf("shardstore: wal rotate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.mu.Unlock()
		w.syncMu.Unlock()
		return fmt.Errorf("shardstore: wal rotate: %w", err)
	}
	w.statSyncs.Add(1)
	w.statSyncedRecs.Add(int64(w.pending))
	if err := w.f.Close(); err != nil {
		w.mu.Unlock()
		w.syncMu.Unlock()
		return fmt.Errorf("shardstore: wal rotate: %w", err)
	}
	w.seq++
	newSeq := w.seq
	f, err := os.OpenFile(filepath.Join(w.dir, segName(newSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.mu.Unlock()
		w.syncMu.Unlock()
		return fmt.Errorf("shardstore: wal rotate: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	w.pending = 0
	w.mu.Unlock()
	w.syncMu.Unlock()

	// Stream the snapshot without holding the WAL mutex: appends to the
	// new segment proceed concurrently.
	tmpPath := filepath.Join(w.dir, snapName(newSeq)+".tmp")
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("shardstore: wal snapshot: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	werr := write(func(key string, value []byte) error {
		_, err := bw.Write(frame(nil, OpPut, key, value))
		return err
	})
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("shardstore: wal snapshot: %w", werr)
	}
	if err := os.Rename(tmpPath, filepath.Join(w.dir, snapName(newSeq))); err != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("shardstore: wal snapshot: %w", err)
	}
	syncDir(w.dir)

	// The rename is durable: segments below newSeq and older snapshots
	// are now dead weight.
	segs, snaps, _, err := scanDir(w.dir)
	if err != nil {
		return err
	}
	for _, seq := range segs {
		if seq < newSeq {
			_ = os.Remove(filepath.Join(w.dir, segName(seq)))
		}
	}
	for _, seq := range snaps {
		if seq < newSeq {
			_ = os.Remove(filepath.Join(w.dir, snapName(seq)))
		}
	}
	w.mu.Lock()
	w.snapSeq = newSeq
	w.mu.Unlock()
	return nil
}

// syncDir fsyncs the directory so a just-renamed snapshot survives a
// crash (best effort: some filesystems refuse directory syncs).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Close implements Backend: stop the flusher, sync what is buffered,
// and close the active segment. Any sticky failure from the WAL's
// lifetime (including background-flusher sync errors) is returned.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
	}
	// syncMu excludes an in-flight Sync/Compact fsync from racing the
	// final close of the file handle.
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.firstErr != nil {
		_ = w.f.Close()
		return w.firstErr
	}
	if err := w.w.Flush(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("shardstore: wal close: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("shardstore: wal close: %w", err)
	}
	w.statSyncs.Add(1)
	w.statSyncedRecs.Add(int64(w.pending))
	return w.f.Close()
}
