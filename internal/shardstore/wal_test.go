package shardstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// replayMap replays a backend into a plain map, failing the test on
// replay errors.
func replayMap(t *testing.T, b Backend) map[string]string {
	t.Helper()
	m := make(map[string]string)
	if err := b.Replay(func(op Op, key string, value []byte) error {
		switch op {
		case OpPut:
			m[key] = string(value)
		case OpDelete:
			delete(m, key)
		}
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return m
}

func openWAL(t *testing.T, dir string) *WAL {
	t.Helper()
	// Disable the background flusher: tests control sync points.
	w, err := OpenWAL(dir, WALConfig{FlushInterval: -1})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if got := replayMap(t, w); len(got) != 0 {
		t.Fatalf("fresh wal replays %d records, want 0", len(got))
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Append(OpPut, "a", []byte("1")))
	must(w.Append(OpPut, "b", []byte("2")))
	must(w.Append(OpPut, "a", []byte("3"))) // overwrite
	must(w.Append(OpDelete, "b", nil))
	must(w.Append(OpPut, "c", nil)) // empty value is a valid record
	must(w.Close())

	w2 := openWAL(t, dir)
	defer w2.Close()
	got := replayMap(t, w2)
	want := map[string]string{"a": "3", "c": ""}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
}

func TestWALSurvivesUnsyncedClose(t *testing.T) {
	// Close flushes the batch buffer even when SyncEvery was never
	// reached.
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALConfig{SyncEvery: 1 << 20, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpPut, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir)
	defer w2.Close()
	if got := replayMap(t, w2); got["k"] != "v" {
		t.Fatalf("replayed %v, want k=v", got)
	}
}

func TestWALTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	for _, k := range []string{"a", "b", "c"} {
		if err := w.Append(OpPut, k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the final record.
	segs, _, _, err := scanDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("scanDir: segs=%v err=%v", segs, err)
	}
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir)
	got := replayMap(t, w2)
	if len(got) != 2 || got["a"] != "v-a" || got["b"] != "v-b" {
		t.Fatalf("after torn tail, replayed %v, want a and b only", got)
	}
	// The truncated log must accept appends cleanly.
	if err := w2.Append(OpPut, "d", []byte("v-d")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3 := openWAL(t, dir)
	defer w3.Close()
	got = replayMap(t, w3)
	if len(got) != 3 || got["d"] != "v-d" {
		t.Fatalf("after re-append, replayed %v, want a, b, d", got)
	}
}

func TestWALTornTailChecksumFailure(t *testing.T) {
	// A corrupted (not just short) final record is also treated as the
	// torn tail: dropped, and the file reopens clean.
	dir := t.TempDir()
	w := openWAL(t, dir)
	for _, k := range []string{"a", "b"} {
		if err := w.Append(OpPut, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _, _ := scanDir(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a payload byte of the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir)
	defer w2.Close()
	got := replayMap(t, w2)
	if len(got) != 1 || got["a"] != "v" {
		t.Fatalf("after checksum-corrupt tail, replayed %v, want a only", got)
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	state := map[string][]byte{}
	for i := 0; i < 100; i++ {
		k := string(rune('a' + i%7))
		v := []byte{byte(i)}
		state[k] = v
		if err := w.Append(OpPut, k, v); err != nil {
			t.Fatal(err)
		}
	}
	delete(state, "a")
	if err := w.Append(OpDelete, "a", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(func(emit func(key string, value []byte) error) error {
		for k, v := range state {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Compaction must leave exactly one snapshot and one (fresh) segment.
	segs, snaps, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || len(snaps) != 1 {
		t.Fatalf("after compact: segments %v snapshots %v, want one of each", segs, snaps)
	}
	// Records appended after the compaction land in the new segment and
	// survive alongside the snapshot.
	if err := w.Append(OpPut, "z", []byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir)
	defer w2.Close()
	got := replayMap(t, w2)
	if len(got) != len(state)+1 {
		t.Fatalf("replayed %d records, want %d", len(got), len(state)+1)
	}
	for k, v := range state {
		if got[k] != string(v) {
			t.Fatalf("key %q: replayed %q, want %q", k, got[k], v)
		}
	}
	if got["z"] != "post" {
		t.Fatalf("post-compaction append lost: %v", got)
	}
	if _, ok := got["a"]; ok {
		t.Fatal("deleted key resurrected by compaction")
	}
}

func TestWALDamageBeforeValidRecordsRefusedAtOpen(t *testing.T) {
	// A bad frame followed by frames that still parse is NOT a torn
	// tail — it is at-rest damage, and truncating there would silently
	// discard acknowledged records. OpenWAL must refuse with ErrCorrupt.
	dir := t.TempDir()
	w := openWAL(t, dir)
	for i := 0; i < 50; i++ {
		if err := w.Append(OpPut, fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _, _ := scanDir(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff // damage an early record, leaving dozens of valid ones after
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALConfig{FlushInterval: -1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-segment damage: err=%v, want ErrCorrupt", err)
	}
}

func TestWALMidLogCorruptionIsAnError(t *testing.T) {
	// Corruption that is not the final segment's tail must fail Replay
	// with ErrCorrupt instead of silently dropping records.
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Append(OpPut, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(func(emit func(key string, value []byte) error) error {
		return emit("a", []byte("1"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, snaps, _, _ := scanDir(dir)
	path := filepath.Join(dir, snapName(snaps[len(snaps)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir)
	defer w2.Close()
	err = w2.Replay(func(Op, string, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of corrupt snapshot: err=%v, want ErrCorrupt", err)
	}
}

func TestWALBackgroundFlusherSyncsPartialBatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALConfig{SyncEvery: 1 << 20, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(OpPut, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		pending := w.pending
		w.mu.Unlock()
		if pending == 0 {
			return // flushed by the background flusher
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced the partial batch")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	w := openWAL(t, t.TempDir())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpPut, "k", nil); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("append after close: err=%v, want ErrWALClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
