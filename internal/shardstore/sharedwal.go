package shardstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// SharedWAL multiplexes several stores' persistence streams into one
// WAL — one file, one write buffer, one fsync schedule. A durable node
// runs a journal, a quarantine store, a reputation ledger (and, in
// some stacks, a flight recorder); giving each its own WAL means each
// pays its own background flusher and its own fsync cadence, so one
// node costs four fsync schedules. At fleet scale that multiplies:
// 500 durable nodes × 3 stores = 1500 flusher goroutines all syncing
// on independent 100ms timers. A SharedWAL collapses that to one
// stream per node: every consumer's appends land in the same segment
// (keys are prefixed with the consumer name), group-committed by the
// single flusher, and replayed per consumer from an in-memory shadow
// of the live key set.
//
// Usage:
//
//	sw, _ := OpenSharedWAL(dir, SharedWALConfig{})
//	journalBackend, _ := sw.Handle("journal")
//	ledgerBackend, _ := sw.Handle("ledger")
//	... pass each handle as PersistConfig.Backend (CompactEvery: -1) ...
//	// close order: stores first (their Close detaches the handle),
//	// then sw.Close() — which owns the underlying file.
//
// Each handle implements Backend. Store-driven auto-compaction should
// be disabled (PersistConfig.CompactEvery < 0) because no single
// consumer can decide when the *shared* log is worth snapshotting; the
// SharedWAL compacts itself from its shadow state every CompactEvery
// appends across all consumers.
type SharedWAL struct {
	inner        *WAL
	compactEvery int64

	mu sync.Mutex
	// shadow is the live key→value state per consumer, updated under mu
	// atomically with every successful inner.Append. It serves two
	// roles: per-consumer Replay (the "replay cursor" — each handle
	// streams only its own records) and compaction (the snapshot is the
	// flattened shadow, captured inside the inner WAL's post-rotation
	// write callback so no append can fall between snapshot and log).
	shadow  map[string]map[string][]byte
	claimed map[string]bool
	closed  bool

	appendsSinceCompact atomic.Int64
	compacting          atomic.Bool
	compactWG           sync.WaitGroup
}

// SharedWALConfig parameterizes a SharedWAL.
type SharedWALConfig struct {
	// WAL configures the underlying log (sync batch size, flush
	// cadence).
	WAL WALConfig
	// CompactEvery triggers a shared snapshot compaction after this
	// many appends across all consumers; 0 means DefaultCompactEvery,
	// negative disables automatic compaction.
	CompactEvery int
}

// sharedKeySep separates the consumer name from the consumer's key in
// the underlying log. Unit separator: never part of a consumer name.
const sharedKeySep = "\x1f"

// OpenSharedWAL opens (or reopens) a shared WAL directory and rebuilds
// the per-consumer shadow state from the log.
func OpenSharedWAL(dir string, cfg SharedWALConfig) (*SharedWAL, error) {
	inner, err := OpenWAL(dir, cfg.WAL)
	if err != nil {
		return nil, err
	}
	s := &SharedWAL{
		inner:        inner,
		compactEvery: int64(cfg.CompactEvery),
		shadow:       make(map[string]map[string][]byte),
		claimed:      make(map[string]bool),
	}
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	err = inner.Replay(func(op Op, key string, value []byte) error {
		name, rest, ok := strings.Cut(key, sharedKeySep)
		if !ok || name == "" {
			return fmt.Errorf("%w: shared wal record without consumer prefix: %q", ErrCorrupt, key)
		}
		switch op {
		case OpPut:
			m := s.shadow[name]
			if m == nil {
				m = make(map[string][]byte)
				s.shadow[name] = m
			}
			m[rest] = append([]byte(nil), value...)
		case OpDelete:
			delete(s.shadow[name], rest)
		default:
			return fmt.Errorf("%w: unknown op %d for key %q", ErrCorrupt, op, key)
		}
		return nil
	})
	if err != nil {
		_ = inner.Close()
		return nil, err
	}
	return s, nil
}

// Handle claims the named consumer stream and returns its Backend.
// Each name can be claimed once per SharedWAL lifetime: two stores
// writing the same stream would corrupt each other's replay.
func (s *SharedWAL) Handle(name string) (*SharedHandle, error) {
	if name == "" || strings.Contains(name, sharedKeySep) {
		return nil, fmt.Errorf("shardstore: invalid shared wal consumer name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrWALClosed
	}
	if s.claimed[name] {
		return nil, fmt.Errorf("shardstore: shared wal consumer %q already claimed", name)
	}
	s.claimed[name] = true
	return &SharedHandle{shared: s, name: name}, nil
}

// Stats returns the underlying WAL's lifetime counters: total appends
// across all consumers, fsync count, and records per fsync.
func (s *SharedWAL) Stats() WALStats { return s.inner.Stats() }

// Sync forces everything appended so far (all consumers) to stable
// storage.
func (s *SharedWAL) Sync() error { return s.inner.Sync() }

// Compact snapshots the shared log from the shadow state, regardless
// of the append-count trigger.
func (s *SharedWAL) Compact() error { return s.compactNow() }

// Close waits out any background compaction and closes the underlying
// WAL. Stores layered over handles must be closed first (their Close
// syncs via the handle); the SharedWAL owns the file.
func (s *SharedWAL) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.compactWG.Wait()
	return s.inner.Close()
}

// compactNow rotates the underlying log and snapshots the flattened
// shadow. The capture runs inside the inner WAL's write callback —
// i.e. after segment rotation — and takes s.mu, so every record
// appended before the capture is in the snapshot and every record
// appended after it lands in the new segment: nothing can fall
// between.
func (s *SharedWAL) compactNow() error {
	err := s.inner.Compact(func(emit func(key string, value []byte) error) error {
		type kv struct {
			k string
			v []byte
		}
		s.mu.Lock()
		flat := make([]kv, 0, 256)
		for name, m := range s.shadow {
			for k, v := range m {
				flat = append(flat, kv{name + sharedKeySep + k, v})
			}
		}
		s.mu.Unlock()
		for _, p := range flat {
			if err := emit(p.k, p.v); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		s.appendsSinceCompact.Store(0)
	}
	return err
}

// maybeCompact triggers a background compaction when the shared append
// count crosses the threshold.
func (s *SharedWAL) maybeCompact() {
	if s.compactEvery < 0 || s.appendsSinceCompact.Load() < s.compactEvery {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	closed := s.closed
	if !closed {
		s.compactWG.Add(1)
	}
	s.mu.Unlock()
	if closed {
		s.compacting.Store(false)
		return
	}
	go func() {
		defer s.compactWG.Done()
		defer s.compacting.Store(false)
		_ = s.compactNow() // failures are sticky in the inner WAL
	}()
}

// SharedHandle is one consumer's view of a SharedWAL. It implements
// Backend: appends are prefixed into the shared log, replay streams
// this consumer's live state from the shadow.
type SharedHandle struct {
	shared  *SharedWAL
	name    string
	appends atomic.Int64
}

var _ Backend = (*SharedHandle)(nil)
var _ StatsProvider = (*SharedHandle)(nil)

// Replay implements Backend: stream this consumer's live keys (all
// OpPut — the shadow is the post-delete state, which replays to the
// same map the raw log would).
func (h *SharedHandle) Replay(apply func(op Op, key string, value []byte) error) error {
	s := h.shared
	s.mu.Lock()
	type kv struct {
		k string
		v []byte
	}
	snap := make([]kv, 0, len(s.shadow[h.name]))
	for k, v := range s.shadow[h.name] {
		snap = append(snap, kv{k, append([]byte(nil), v...)})
	}
	s.mu.Unlock()
	for _, p := range snap {
		if err := apply(OpPut, p.k, p.v); err != nil {
			return err
		}
	}
	return nil
}

// Append implements Backend: write the prefixed record to the shared
// log and mirror it into the shadow. The two updates happen under one
// critical section so the shadow (and therefore every future snapshot
// and replay) is exactly the state the log acknowledges.
func (h *SharedHandle) Append(op Op, key string, value []byte) error {
	s := h.shared
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrWALClosed
	}
	if err := s.inner.Append(op, h.name+sharedKeySep+key, value); err != nil {
		s.mu.Unlock()
		return err
	}
	switch op {
	case OpPut:
		m := s.shadow[h.name]
		if m == nil {
			m = make(map[string][]byte)
			s.shadow[h.name] = m
		}
		m[key] = append([]byte(nil), value...)
	case OpDelete:
		delete(s.shadow[h.name], key)
	}
	s.mu.Unlock()
	h.appends.Add(1)
	s.appendsSinceCompact.Add(1)
	s.maybeCompact()
	return nil
}

// Compact implements Backend. The emitted state is authoritative for
// this consumer: it replaces the consumer's shadow before the shared
// snapshot is cut (a store may have evicted or expired entries it
// never logged — see NewPersistent). Other consumers' streams are
// compacted from their shadows as-is.
func (h *SharedHandle) Compact(write func(emit func(key string, value []byte) error) error) error {
	fresh := make(map[string][]byte)
	if err := write(func(key string, value []byte) error {
		fresh[key] = append([]byte(nil), value...)
		return nil
	}); err != nil {
		return err
	}
	s := h.shared
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrWALClosed
	}
	s.shadow[h.name] = fresh
	s.mu.Unlock()
	return s.compactNow()
}

// Sync implements Backend: one fsync covers every consumer's pending
// records — that is the group commit.
func (h *SharedHandle) Sync() error { return h.shared.inner.Sync() }

// Close implements Backend. Handles do not own the shared file; Close
// syncs this consumer's pending records and detaches. The SharedWAL's
// own Close (called after all stores are closed) closes the file, so a
// handle closed after the SharedWAL tolerates ErrWALClosed.
func (h *SharedHandle) Close() error {
	if err := h.shared.inner.Sync(); err != nil && !errors.Is(err, ErrWALClosed) {
		return err
	}
	return nil
}

// Stats implements StatsProvider: this consumer's append count paired
// with the shared fsync counters (every consumer's records ride the
// same fsyncs — that is what the mean batch size measures).
func (h *SharedHandle) Stats() WALStats {
	inner := h.shared.inner.Stats()
	return WALStats{
		Appends:       h.appends.Load(),
		Syncs:         inner.Syncs,
		SyncedRecords: inner.SyncedRecords,
	}
}
