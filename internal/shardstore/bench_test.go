package shardstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// mutexMap is the single-mutex baseline the sharded store replaces —
// the shape of the seed's core.Node bookkeeping maps.
type mutexMap struct {
	mu sync.Mutex
	m  map[string]int
}

func newMutexMap() *mutexMap { return &mutexMap{m: make(map[string]int)} }

func (b *mutexMap) get(k string) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[k]
	return v, ok
}

func (b *mutexMap) put(k string, v int) {
	b.mu.Lock()
	b.m[k] = v
	b.mu.Unlock()
}

// benchKeys pre-builds the hot key set so key formatting stays out of
// the measured loop.
func benchKeys() []string {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("agent-%03d", i)
	}
	return keys
}

// BenchmarkContention compares the sharded store against the
// single-mutex baseline under the node's hot-path mix (2 reads : 1
// write, distinct agents). Run with -cpu 1,2,4,8: the acceptance bar is
// sharded/8-goroutine throughput ≥ 2x the mutex baseline's.
func BenchmarkContention(b *testing.B) {
	keys := benchKeys()
	b.Run("mutexmap", func(b *testing.B) {
		m := newMutexMap()
		for i, k := range keys {
			m.put(k, i)
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := keys[i%len(keys)]
				if i%3 == 2 {
					m.put(k, i)
				} else {
					m.get(k)
				}
				i++
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		st := New[int](Config[int]{Shards: 32})
		for i, k := range keys {
			st.Put(k, i)
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := keys[i%len(keys)]
				if i%3 == 2 {
					st.Put(k, i)
				} else {
					st.Get(k)
				}
				i++
			}
		})
	})
}

// TestContentionScaling is the acceptance gate in test form: at 8
// goroutines the sharded store must clear 2x the single-mutex
// baseline's throughput. Each operation is an Upsert whose closure
// holds the entry lock across a fixed stall — standing in for work a
// holder does that need not serialize with other keys' bookkeeping
// (receipt resolution, value cloning, eviction sweeps). On a multi-core
// host that work is CPU time proceeding in parallel; emulating it as a
// wall-clock stall makes the serialization measurable on any host,
// including single-CPU CI boxes, where purely CPU-bound contention
// cannot show wall-clock scaling by definition. Skipped in -short runs
// and under the race detector (instrumentation flattens the ratio).
func TestContentionScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("contention measurement skipped in -short")
	}
	if testutil.RaceEnabled {
		t.Skip("contention ratios are not meaningful under the race detector")
	}
	keys := benchKeys()
	const (
		goroutines = 8
		opsPerG    = 60
		holdTime   = 200 * time.Microsecond
	)
	// run measures ops/s for an upsert-with-stall workload where each
	// goroutine works a disjoint key slice (the node's situation:
	// distinct agents striped onto distinct workers).
	run := func(upsert func(k string)) float64 {
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				stride := len(keys) / goroutines
				for i := 0; i < opsPerG; i++ {
					upsert(keys[g*stride+i%stride])
				}
			}()
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		return float64(goroutines*opsPerG) / time.Since(t0).Seconds()
	}
	stallPut := func(hold func(k string, fn func())) func(string) {
		return func(k string) {
			hold(k, func() { time.Sleep(holdTime) })
		}
	}

	best := 0.0
	for attempt := 0; attempt < 3 && best < 2.0; attempt++ {
		m := newMutexMap()
		baseline := run(stallPut(func(k string, fn func()) {
			m.mu.Lock()
			fn()
			m.m[k]++
			m.mu.Unlock()
		}))
		st := New[int](Config[int]{Shards: 32})
		sharded := run(stallPut(func(k string, fn func()) {
			st.Upsert(k, func(old int, ok bool) int {
				fn()
				return old + 1
			})
		}))
		ratio := sharded / baseline
		if ratio > best {
			best = ratio
		}
		t.Logf("attempt %d: mutexmap %.0f ops/s, sharded %.0f ops/s, ratio %.2fx", attempt, baseline, sharded, ratio)
	}
	if best < 2.0 {
		t.Errorf("sharded store scaled %.2fx over the single mutex at %d goroutines, want >= 2x", best, goroutines)
	}
}
