package shardstore

import (
	"errors"
	"fmt"
)

// DefaultCompactEvery is the number of appended records between
// snapshot compactions when PersistConfig.CompactEvery is zero. It is
// high enough that compaction never dominates a steady write load and
// low enough that replay time stays proportional to the live state, not
// the node's lifetime.
const DefaultCompactEvery = 4096

// PersistConfig wires a Backend under a Store.
type PersistConfig[V any] struct {
	// Backend is the persistence layer (e.g. a WAL). The store owns it
	// from here on: Store.Close closes it.
	Backend Backend
	// Codec converts values to and from the backend's byte records.
	Codec Codec[V]
	// CompactEvery triggers a snapshot compaction after this many
	// appended records; 0 means DefaultCompactEvery, negative disables
	// automatic compaction (Compact can still be called explicitly).
	CompactEvery int
	// OnError observes the first persistence failure (append or
	// compaction I/O error); may be nil. It fires exactly once: the
	// backend's errors are sticky and a log with holes would replay
	// into a silently wrong state, so on the first failure the store
	// stops appending and keeps serving from memory — persistence is
	// degraded, not the cache. The error is also returned by Close.
	OnError func(error)
}

// NewPersistent builds a store layered over a persistence backend: the
// backend's log is replayed to rebuild the in-memory state, and every
// subsequent mutation (insert, overwrite, delete, capacity eviction,
// TTL expiry) is appended to it. The in-memory sharded tier remains the
// cache and the only read path.
//
// Replay re-enters entries through the normal insert path, so capacity
// bounds and OnEvict/Evictable hooks apply to recovered state exactly
// as they do to live state (a store reopened with a smaller capacity
// evicts down, firing OnEvict; evictions during replay are not logged —
// the next compaction reconciles the backend). Two recovery caveats:
// per-shard FIFO age order is rebuilt from log order, which matches
// original insertion order up to the last compaction's snapshot (a
// snapshot iterates in unspecified order); and TTL clocks restart at
// replay time.
//
// Callers must stop writing before calling Close, which flushes and
// closes the backend.
func NewPersistent[V any](cfg Config[V], p PersistConfig[V]) (*Store[V], error) {
	if p.Backend == nil {
		return nil, errors.New("shardstore: NewPersistent requires a Backend")
	}
	if p.Codec.Encode == nil || p.Codec.Decode == nil {
		return nil, errors.New("shardstore: NewPersistent requires a complete Codec")
	}
	s := New(cfg)
	s.backend = p.Backend
	s.codec = p.Codec
	s.compactEvery = int64(p.CompactEvery)
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	s.onPersistErr = p.OnError
	s.loading = true
	err := p.Backend.Replay(func(op Op, key string, value []byte) error {
		switch op {
		case OpPut:
			v, derr := p.Codec.Decode(value)
			if derr != nil {
				return fmt.Errorf("shardstore: replaying key %q: %w", key, derr)
			}
			s.Put(key, v)
		case OpDelete:
			s.Delete(key)
		default:
			return fmt.Errorf("%w: unknown op %d for key %q", ErrCorrupt, op, key)
		}
		return nil
	})
	s.loading = false
	if err != nil {
		_ = p.Backend.Close()
		return nil, err
	}
	return s, nil
}

// appendRecord mirrors one mutation into the backend. It runs under the
// entry's shard lock (so the encoded bytes are consistent with memory),
// which is also what orders the backend's per-key records. Failures are
// reported, not propagated: the memory tier stays authoritative. After
// the first failure the store stops appending altogether — the WAL's
// own errors are sticky, and a log with holes would replay into a
// silently wrong state, so degraded means degraded.
func (s *Store[V]) appendRecord(op Op, key string, v V) {
	if s.backend == nil || s.loading || s.degraded.Load() {
		return
	}
	var value []byte
	if op == OpPut {
		b, err := s.codec.Encode(v)
		if err != nil {
			s.reportPersistErr(fmt.Errorf("shardstore: encoding key %q: %w", key, err))
			return
		}
		value = b
	}
	if err := s.backend.Append(op, key, value); err != nil {
		s.reportPersistErr(err)
		return
	}
	if s.compactEvery > 0 && s.appends.Add(1) >= s.compactEvery {
		s.maybeCompact()
	}
}

// maybeCompact starts one background compaction if none is running and
// the store is not closing.
func (s *Store[V]) maybeCompact() {
	if s.closing.Load() || !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.appends.Store(0)
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		defer s.compacting.Store(false)
		if err := s.Compact(); err != nil && !errors.Is(err, ErrWALClosed) {
			s.reportPersistErr(err)
		}
	}()
}

// Compact snapshots the store's full live state into the backend,
// letting it drop the log records the snapshot covers. Automatic
// compaction (PersistConfig.CompactEvery) calls this in the background;
// explicit calls are useful before a planned shutdown. No-op for
// memory-only stores.
func (s *Store[V]) Compact() error {
	if s.backend == nil {
		return nil
	}
	return s.backend.Compact(func(emit func(key string, value []byte) error) error {
		return s.snapshotEncoded(emit)
	})
}

// snapshotEncoded streams every live entry's encoded bytes to emit.
// Values are encoded under their shard lock (consistent with memory),
// then emitted unlocked so backend I/O never stalls a shard.
func (s *Store[V]) snapshotEncoded(emit func(key string, value []byte) error) error {
	type kv struct {
		k   string
		enc []byte
	}
	now := s.now()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		snap := make([]kv, 0, len(sh.m))
		var encErr error
		for k, e := range sh.m {
			if s.expired(k, e, now) {
				continue
			}
			enc, err := s.codec.Encode(e.v)
			if err != nil {
				encErr = fmt.Errorf("shardstore: encoding key %q: %w", k, err)
				break
			}
			snap = append(snap, kv{k, enc})
		}
		sh.mu.Unlock()
		if encErr != nil {
			return encErr
		}
		for _, p := range snap {
			if err := emit(p.k, p.enc); err != nil {
				return err
			}
		}
	}
	return nil
}

// reportPersistErr records the first persistence failure (returned by
// Close), forwards it to the OnError hook exactly once, and flags the
// store degraded so the hot path stops paying for (and re-reporting) a
// backend that can no longer accept records.
func (s *Store[V]) reportPersistErr(err error) {
	s.errMu.Lock()
	first := s.firstErr == nil
	if first {
		s.firstErr = err
	}
	s.errMu.Unlock()
	s.degraded.Store(true)
	if first && s.onPersistErr != nil {
		s.onPersistErr(err)
	}
}

// StatsProvider is implemented by backends that expose WAL-style
// lifetime counters (*WAL does; SharedWAL consumer handles do too).
type StatsProvider interface {
	Stats() WALStats
}

// BackendStats returns the backend's lifetime counters when the
// backend exposes them (false for memory-only stores and backends
// without stats).
func (s *Store[V]) BackendStats() (WALStats, bool) {
	if sp, ok := s.backend.(StatsProvider); ok {
		return sp.Stats(), true
	}
	return WALStats{}, false
}

// Close waits out any background compaction and closes the backend,
// returning the first persistence failure seen over the store's
// lifetime, if any. Callers must have stopped writing. No-op (and nil)
// for memory-only stores.
func (s *Store[V]) Close() error {
	if s.backend == nil {
		return nil
	}
	if !s.closing.CompareAndSwap(false, true) {
		return nil
	}
	s.compactWG.Wait()
	closeErr := s.backend.Close()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return errors.Join(s.firstErr, closeErr)
}
