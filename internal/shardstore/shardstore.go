// Package shardstore provides a generic striped-lock sharded map for
// the platform's hot-path bookkeeping: per-agent journals on nodes,
// mailboxes and action ledgers on hosts, retained trace packages, and
// the reputation ledger. Keys are strings (agent IDs, host names, or
// composite keys built with Key); values are striped over independently
// locked shards by FNV-1a hash, so concurrent workers touching distinct
// agents never serialize on one mutex.
//
// The store is bounded: with a non-zero Capacity, inserting beyond it
// evicts the oldest evictable entries first (FIFO by first insertion,
// approximated per shard — eviction sweeps shards round-robin and
// removes each shard's oldest candidate, so the global order is FIFO up
// to striping skew). An optional TTL expires entries lazily on access
// (or eagerly via SweepExpired). Entries the Evictable hook vetoes
// (e.g. a receipt still running) are skipped by capacity eviction and
// do not expire; if nothing is evictable the store tolerates transient
// overshoot rather than dropping live state.
//
// Eviction contract:
//
//   - OnEvict fires exactly once per capacity- or TTL-evicted entry,
//     synchronously, with the evicted value, before the entry leaves
//     the map. It runs while the entry's shard is locked: it must not
//     call back into the store.
//   - Delete and overwriting Put do not fire OnEvict.
//   - Re-inserting a key after Delete re-enters the FIFO at the tail;
//     overwriting an existing key keeps its original position.
//
// A store is memory-only by default. NewPersistent layers a pluggable
// Backend (backend.go) under the same API: every mutation is appended
// to the backend's log and the full state is rebuilt from it on the
// next open, with the sharded in-memory tier staying the cache and the
// only read path. See wal.go for the file-backed implementation.
package shardstore

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Reason says why OnEvict fired.
type Reason int

const (
	// EvictCapacity is a FIFO eviction under capacity pressure.
	EvictCapacity Reason = iota + 1
	// EvictTTL is a lazy expiry of an entry older than the TTL.
	EvictTTL
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case EvictCapacity:
		return "capacity"
	case EvictTTL:
		return "ttl"
	default:
		return "reason(" + strconv.Itoa(int(r)) + ")"
	}
}

// DefaultShards is the shard count when Config.Shards is zero: enough
// stripes that a worker pool on a large machine rarely collides.
const DefaultShards = 32

// Config parameterizes a store.
type Config[V any] struct {
	// Shards is the stripe count, rounded up to a power of two; 0 means
	// DefaultShards.
	Shards int
	// Capacity bounds the total entry count across all shards; 0 means
	// unbounded. Inserts beyond it evict FIFO (oldest first).
	Capacity int
	// TTL expires entries lazily on access (and eagerly via
	// SweepExpired); 0 means no expiry. Entries the Evictable hook
	// vetoes do not expire.
	TTL time.Duration
	// RefreshOnWrite restarts an entry's TTL clock on every overwrite,
	// so the TTL measures age since the last write instead of age since
	// first insertion (e.g. a journal entry's age since it settled).
	RefreshOnWrite bool
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// OnEvict observes capacity/TTL evictions; may be nil. Called under
	// the shard lock — must not call back into the store.
	OnEvict func(key string, v V, reason Reason)
	// Evictable vetoes eviction of in-flight entries; nil means every
	// entry is evictable. Called under the shard lock. The veto covers
	// both capacity eviction and TTL expiry.
	Evictable func(key string, v V) bool
}

// Store is a sharded string-keyed map. The zero value is not usable;
// call New (memory-only) or NewPersistent (backed by a Backend).
type Store[V any] struct {
	cfg    Config[V]
	shards []shard[V]
	mask   uint32
	size   atomic.Int64
	sweep  atomic.Uint32 // round-robin eviction cursor

	// Persistence plumbing; zero for memory-only stores. See persist.go.
	backend      Backend
	codec        Codec[V]
	compactEvery int64
	onPersistErr func(error)
	appends      atomic.Int64 // records since the last compaction
	compacting   atomic.Bool
	closing      atomic.Bool
	compactWG    sync.WaitGroup
	loading      bool // replay in progress: suppress re-appending
	// degraded flags a permanent persistence failure: appends stop,
	// the memory tier keeps serving. See reportPersistErr.
	degraded atomic.Bool
	errMu    sync.Mutex
	firstErr error
}

type shard[V any] struct {
	mu sync.Mutex
	m  map[string]*entry[V]
	// order is the FIFO queue of (key, seq) in first-insertion order.
	// Stale records (deleted or re-inserted keys) are skipped and
	// dropped during eviction scans; head tracks the scan start.
	order []orderRec
	head  int
	// stale counts records invalidated by Delete. Eviction scans only
	// reclaim the queue's prefix, so a Put/Delete workload that never
	// triggers eviction would grow order without bound; once stale
	// records dominate, Delete rebuilds the queue (amortized O(1)).
	stale int
}

type orderRec struct {
	key string
	seq uint64
}

type entry[V any] struct {
	v   V
	at  time.Time // insertion time, for TTL
	seq uint64
}

var seqCounter atomic.Uint64

// New builds a store.
func New[V any](cfg Config[V]) *Store[V] {
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so striping is a mask, not a modulo.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &Store[V]{cfg: cfg, shards: make([]shard[V], pow), mask: uint32(pow - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*entry[V])
	}
	return s
}

// Key builds a composite key from parts, NUL-separated. Parts must not
// contain NUL bytes for the composition to stay injective (agent IDs
// and host names in this codebase never do).
func Key(parts ...string) string {
	switch len(parts) {
	case 0:
		return ""
	case 1:
		return parts[0]
	}
	n := len(parts) - 1
	for _, p := range parts {
		n += len(p)
	}
	b := make([]byte, 0, n)
	for i, p := range parts {
		if i > 0 {
			b = append(b, 0)
		}
		b = append(b, p...)
	}
	return string(b)
}

func (s *Store[V]) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

func (s *Store[V]) shardFor(key string) *shard[V] {
	// Inlined FNV-1a: the striping hash runs on every operation and
	// must not allocate (hash/fnv's New32a escapes).
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h&s.mask]
}

// expired reports whether e is past the TTL at time now and not vetoed
// by the Evictable hook. Must be called under the entry's shard lock.
func (s *Store[V]) expired(key string, e *entry[V], now time.Time) bool {
	if s.cfg.TTL <= 0 || now.Sub(e.at) < s.cfg.TTL {
		return false
	}
	return s.cfg.Evictable == nil || s.cfg.Evictable(key, e.v)
}

// dropLocked removes key from the shard map (the FIFO record is
// dropped lazily by eviction scans), decrements the global size, and
// appends the removal to the backend, if any.
func (s *Store[V]) dropLocked(sh *shard[V], key string) {
	delete(sh.m, key)
	s.size.Add(-1)
	s.appendRecord(OpDelete, key, *new(V))
}

// expireLocked evicts one TTL-expired entry: OnEvict first (so e.g. an
// evidence spill lands before the removal is logged), then the drop.
func (s *Store[V]) expireLocked(sh *shard[V], key string, e *entry[V]) {
	if s.cfg.OnEvict != nil {
		s.cfg.OnEvict(key, e.v, EvictTTL)
	}
	s.dropLocked(sh, key)
}

// Get returns the value for key. An entry past the TTL reads as absent
// and is expired in place.
func (s *Store[V]) Get(key string) (V, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	if s.expired(key, e, s.now()) {
		s.expireLocked(sh, key, e)
		var zero V
		return zero, false
	}
	return e.v, true
}

// Put stores key = v, evicting beyond capacity. Overwriting an
// existing key keeps its FIFO position and insertion time.
func (s *Store[V]) Put(key string, v V) {
	s.Upsert(key, func(V, bool) V { return v })
}

// GetOrCreate returns the existing value or stores and returns
// create(). created reports whether create ran. The existing-key path
// is a pure read: it does not count as a write for RefreshOnWrite TTL
// purposes and appends nothing to a persistence backend (an Upsert
// returning the old value would do both).
func (s *Store[V]) GetOrCreate(key string, create func() V) (v V, created bool) {
	if v, ok := s.Get(key); ok {
		return v, false
	}
	v = s.Upsert(key, func(old V, ok bool) V {
		if ok {
			return old // lost a create race; keep the winner
		}
		created = true
		return create()
	})
	return v, created
}

// Upsert atomically replaces key's value with fn(old, existed) under
// the shard lock and returns the stored value. fn must not call back
// into the store.
func (s *Store[V]) Upsert(key string, fn func(old V, ok bool) V) V {
	sh := s.shardFor(key)
	sh.mu.Lock()
	now := s.now()
	e, ok := sh.m[key]
	if ok && s.expired(key, e, now) {
		s.expireLocked(sh, key, e)
		ok = false
	}
	var old V
	if ok {
		old = e.v
	}
	v := fn(old, ok)
	if ok {
		e.v = v
		if s.cfg.RefreshOnWrite {
			e.at = now
		}
		s.appendRecord(OpPut, key, v)
		sh.mu.Unlock()
		return v
	}
	seq := seqCounter.Add(1)
	sh.m[key] = &entry[V]{v: v, at: now, seq: seq}
	sh.order = append(sh.order, orderRec{key: key, seq: seq})
	s.appendRecord(OpPut, key, v)
	sh.mu.Unlock()
	if n := s.size.Add(1); s.cfg.Capacity > 0 && int(n) > s.cfg.Capacity {
		s.evict()
	}
	return v
}

// View runs fn with key's current value under the shard lock — the
// race-free way to read interior state of a shared value (e.g. copy a
// slice whose backing array concurrent Upserts append to). fn must not
// call back into the store.
func (s *Store[V]) View(key string, fn func(v V, ok bool)) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[key]
	if ok && s.expired(key, e, s.now()) {
		s.expireLocked(sh, key, e)
		ok = false
	}
	if !ok {
		var zero V
		fn(zero, false)
		return
	}
	fn(e.v, true)
}

// Delete removes key, reporting whether it was present. OnEvict does
// not fire.
func (s *Store[V]) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; !ok {
		return false
	}
	s.dropLocked(sh, key)
	sh.stale++
	if sh.stale > 64 && sh.stale > len(sh.m) {
		s.rebuildOrderLocked(sh)
	}
	return true
}

// rebuildOrderLocked drops every stale FIFO record, keeping the queue's
// memory proportional to the live entry count under Put/Delete churn.
func (s *Store[V]) rebuildOrderLocked(sh *shard[V]) {
	live := sh.order[:0]
	for _, rec := range sh.order[sh.head:] {
		if e, ok := sh.m[rec.key]; ok && e.seq == rec.seq {
			live = append(live, rec)
		}
	}
	sh.order = live
	sh.head = 0
	sh.stale = 0
}

// Len returns the entry count (TTL-expired entries still count until
// touched).
func (s *Store[V]) Len() int { return int(s.size.Load()) }

// SweepExpired eagerly drops every TTL-expired, non-vetoed entry and
// returns how many were dropped. Expiry is otherwise lazy (an expired
// entry is only reclaimed when its key is touched or a capacity
// eviction scan passes it), so long-lived stores with quiet keys call
// this periodically to shed settled state by age.
func (s *Store[V]) SweepExpired() int {
	if s.cfg.TTL <= 0 {
		return 0
	}
	dropped := 0
	now := s.now()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			if s.expired(k, e, now) {
				s.expireLocked(sh, k, e)
				sh.stale++
				dropped++
			}
		}
		if sh.stale > 64 && sh.stale > len(sh.m) {
			s.rebuildOrderLocked(sh)
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Range calls fn over a point-in-time snapshot of each shard taken
// under its lock; fn itself runs unlocked, so it may call back into the
// store. Entries inserted or removed while ranging may or may not be
// seen; no entry is visited twice.
func (s *Store[V]) Range(fn func(key string, v V) bool) {
	type kv struct {
		k string
		v V
	}
	now := s.now()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		snap := make([]kv, 0, len(sh.m))
		for k, e := range sh.m {
			if s.expired(k, e, now) {
				continue
			}
			snap = append(snap, kv{k, e.v})
		}
		sh.mu.Unlock()
		for _, p := range snap {
			if !fn(p.k, p.v) {
				return
			}
		}
	}
}

// evict removes the oldest evictable entries, sweeping shards
// round-robin, until the store is back under capacity or a full sweep
// finds nothing evictable (transient overshoot is tolerated: in-flight
// entries are never dropped). Shards are locked one at a time, never
// nested.
func (s *Store[V]) evict() {
	misses := 0
	for int(s.size.Load()) > s.cfg.Capacity && misses < len(s.shards) {
		idx := s.sweep.Add(1) & s.mask
		if s.evictOneFrom(&s.shards[idx]) {
			misses = 0
		} else {
			misses++
		}
	}
}

// evictOneFrom pops the shard's oldest evictable entry; reports whether
// one was evicted. Stale FIFO records (deleted/re-inserted keys) are
// compacted away as the scan passes them.
func (s *Store[V]) evictOneFrom(sh *shard[V]) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := s.now()
	for i := sh.head; i < len(sh.order); i++ {
		rec := sh.order[i]
		e, ok := sh.m[rec.key]
		if !ok || e.seq != rec.seq {
			// Stale: the key was deleted or re-inserted; drop the record
			// if it is still at the scan head.
			if i == sh.head {
				sh.head++
			}
			continue
		}
		reason := EvictCapacity
		if s.expired(rec.key, e, now) {
			reason = EvictTTL
		} else if s.cfg.Evictable != nil && !s.cfg.Evictable(rec.key, e.v) {
			continue // pinned; look past it
		}
		// OnEvict before the drop: a spill hook runs before the removal
		// reaches the backend's log.
		if s.cfg.OnEvict != nil {
			s.cfg.OnEvict(rec.key, e.v, reason)
		}
		s.dropLocked(sh, rec.key)
		if i == sh.head {
			sh.head++
		}
		s.compactLocked(sh)
		return true
	}
	s.compactLocked(sh)
	return false
}

// compactLocked reclaims the consumed prefix of the FIFO queue once it
// dominates the slice, keeping the queue's memory proportional to the
// live entry count.
func (s *Store[V]) compactLocked(sh *shard[V]) {
	if sh.head > 64 && sh.head > len(sh.order)/2 {
		n := copy(sh.order, sh.order[sh.head:])
		sh.order = sh.order[:n]
		sh.head = 0
	}
}
