package shardstore

// Op tags one record in a persistence backend's log: an insert/update
// or a removal. The two ops are all a Store needs to mirror its state
// into an append-only log — replaying the ops in order rebuilds the
// exact live key set.
type Op byte

const (
	// OpPut records that a key was inserted or overwritten with the
	// encoded value carried by the record.
	OpPut Op = 1
	// OpDelete records that a key was removed (Delete, capacity
	// eviction, or TTL expiry); the record carries no value.
	OpDelete Op = 2
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	default:
		return "op(?)"
	}
}

// Backend is the pluggable persistence layer under a Store: an
// append-only log of (op, key, value) records plus periodic compacted
// snapshots. The in-memory sharded Store stays the cache and the only
// read path; the backend exists so the cache can be rebuilt after a
// process restart.
//
// Contract:
//
//   - Replay must be called once, before the first Append, and streams
//     every surviving record in append order: the latest snapshot's
//     records first (all OpPut), then every log record written after
//     that snapshot was taken. Applying the records in order to an
//     empty map yields the persisted state.
//   - Append durably records one mutation. Implementations may batch
//     the actual sync (see WALConfig); Sync forces everything appended
//     so far to stable storage.
//   - Compact asks the backend to replace its accumulated log with a
//     fresh snapshot: it invokes write, which emits the store's full
//     live contents, and on success drops log records made redundant by
//     the snapshot. Append may be called concurrently with Compact;
//     records appended while the snapshot is being written must survive
//     replay (re-applying such a record after the snapshot is harmless
//     because the snapshot already reflects it or an even newer write).
//   - Close flushes and releases the backend. The Store that owns the
//     backend calls Close from its own Close.
//
// Implementations must be safe for concurrent Append/Sync/Compact.
type Backend interface {
	Replay(apply func(op Op, key string, value []byte) error) error
	Append(op Op, key string, value []byte) error
	Compact(write func(emit func(key string, value []byte) error) error) error
	Sync() error
	Close() error
}

// Codec converts store values to and from the byte strings a Backend
// persists. Encode runs under the value's shard lock (so the encoded
// bytes are consistent with the in-memory state even for pointer values
// mutated in place); it must not call back into the store.
type Codec[V any] struct {
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
}

// BytesCodec is the identity codec for stores whose values are already
// encoded byte strings (e.g. retained reference packages).
func BytesCodec() Codec[[]byte] {
	return Codec[[]byte]{
		Encode: func(b []byte) ([]byte, error) { return b, nil },
		Decode: func(b []byte) ([]byte, error) { return b, nil },
	}
}
