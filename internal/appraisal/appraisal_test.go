package appraisal_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/appraisal"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/platformtest"
	"repro/internal/sigcrypto"
	"repro/internal/value"
)

func TestRuleCompileAndEvaluate(t *testing.T) {
	r := appraisal.MustRule("money", "moneySpent + moneyRest == moneyInitial")
	st := value.State{
		"moneySpent":   value.Int(30),
		"moneyRest":    value.Int(70),
		"moneyInitial": value.Int(100),
	}
	if ok, err := r.Holds(st); err != nil || !ok {
		t.Errorf("Holds = %v, %v", ok, err)
	}
	st["moneySpent"] = value.Int(31)
	if ok, err := r.Holds(st); err != nil || ok {
		t.Errorf("violated rule holds: %v, %v", ok, err)
	}
}

func TestRuleRejectsImpureExpressions(t *testing.T) {
	if _, err := appraisal.NewRule("bad", `read("x") == 1`); err == nil {
		t.Error("rule with input external compiled")
	}
	if _, err := appraisal.NewRule("bad", `f() == 1`); err == nil {
		t.Error("rule with procedure call compiled")
	}
	if _, err := appraisal.NewRule("bad", `1 +`); err == nil {
		t.Error("malformed rule compiled")
	}
}

func TestRuleOnMissingVariableFails(t *testing.T) {
	r := appraisal.MustRule("r", "x == 1")
	if _, err := r.Holds(value.State{}); err == nil {
		t.Error("rule over missing variable evaluated")
	}
}

func TestRuleSetEvaluation(t *testing.T) {
	rules := appraisal.RuleSet{
		appraisal.MustRule("nonneg", "rest >= 0"),
		appraisal.MustRule("budget", "spent + rest == 100"),
		appraisal.MustRule("items", "len(items) <= 3"),
	}
	good := value.State{
		"rest":  value.Int(60),
		"spent": value.Int(40),
		"items": value.List(value.Str("a")),
	}
	mech := appraisal.New()
	pkg := &core.ReferencePackage{ResultingState: good}
	cc := core.NewCheckContext(mech, pkg, nil, nil, core.AfterSession)
	ok, violations, err := rules.Check(cc)
	if err != nil || !ok {
		t.Fatalf("good state rejected: %v %v", violations, err)
	}
	bad := good.Clone()
	bad["rest"] = value.Int(-5)
	bad["spent"] = value.Int(40)
	cc = core.NewCheckContext(mech, &core.ReferencePackage{ResultingState: bad}, nil, nil, core.AfterSession)
	ok, violations, err = rules.Check(cc)
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(violations) != 2 {
		t.Errorf("ok=%v violations=%v (want 2: nonneg and budget)", ok, violations)
	}
}

// buyerCode is an agent with a money invariant: it "spends" on the shop
// host.
const buyerCode = `
proc main() {
    moneyInitial = 100
    moneyRest = 100
    moneySpent = 0
    migrate("shop", "buy")
}
proc buy() {
    let price = read("price")
    moneySpent = moneySpent + price
    moneyRest = moneyRest - price
    migrate("home2", "finish")
}
proc finish() { done() }`

var buyerRules = appraisal.RuleSet{
	appraisal.MustRule("conservation", "moneySpent + moneyRest == moneyInitial"),
	appraisal.MustRule("no-overdraft", "moneyRest >= 0"),
}

// ownerKeys generates and registers the owner principal.
func ownerKeys(t *testing.T, bed *platformtest.Bed) *sigcrypto.KeyPair {
	t.Helper()
	keys, err := sigcrypto.GenerateKeyPair("owner")
	if err != nil {
		t.Fatal(err)
	}
	if err := bed.Reg.RegisterKeyPair(keys); err != nil {
		t.Fatal(err)
	}
	return keys
}

func buildBed(t *testing.T, shopBehavior host.Behavior) (*platformtest.Bed, *agent.Agent) {
	t.Helper()
	bed := platformtest.New(t)
	for _, name := range []string{"home", "shop", "home2"} {
		name := name
		bed.AddHost(name, platformtest.HostOptions{
			Trusted:    strings.HasPrefix(name, "home"),
			Mechanisms: func() []core.Mechanism { return []core.Mechanism{appraisal.New()} },
			Configure: func(c *host.Config) {
				if name == "shop" {
					c.Resources = map[string]value.Value{"price": value.Int(30)}
					c.Behavior = shopBehavior
				}
			},
		})
	}
	owner := ownerKeys(t, bed)
	ag := bed.NewAgent("buyer", buyerCode)
	if err := appraisal.Attach(ag, buyerRules, owner); err != nil {
		t.Fatal(err)
	}
	return bed, ag
}

func TestHonestJourneyPasses(t *testing.T) {
	bed, ag := buildBed(t, nil)
	if err := bed.Run("home", ag); err != nil {
		t.Fatal(err)
	}
	done, aborted := bed.Completed()
	if len(done) != 1 || aborted {
		t.Fatalf("done=%d aborted=%v", len(done), aborted)
	}
	if got := done[0].State["moneyRest"].Int; got != 70 {
		t.Errorf("moneyRest = %d", got)
	}
	for _, v := range bed.Verdicts() {
		if !v.OK {
			t.Errorf("failed verdict on honest run: %s", v)
		}
	}
}

func TestRuleViolatingManipulationDetected(t *testing.T) {
	// The shop drains the wallet without booking the spend: violates
	// conservation.
	bed, ag := buildBed(t, attack.DataManipulation{Var: "moneyRest", Val: value.Int(0)})
	err := bed.Run("home", ag)
	if !errors.Is(err, core.ErrDetection) {
		t.Fatalf("err = %v, want ErrDetection", err)
	}
	failed := bed.FailedVerdicts()
	if len(failed) != 1 || failed[0].Suspect != "shop" {
		t.Fatalf("failed = %v", failed)
	}
	if !strings.Contains(strings.Join(failed[0].Evidence, " "), "conservation") {
		t.Errorf("evidence does not name the violated rule: %v", failed[0].Evidence)
	}
}

func TestRuleConsistentManipulationMissed(t *testing.T) {
	// The documented §3.1 limitation: a manipulation that keeps the
	// rules satisfied (here: inflating the price consistently on both
	// sides of the invariant) is undetectable by appraisal.
	bed, ag := buildBed(t, attack.StateMutation{Mutate: func(st value.State) {
		st["moneySpent"] = value.Int(90)
		st["moneyRest"] = value.Int(10)
	}})
	if err := bed.Run("home", ag); err != nil {
		t.Fatalf("rule-consistent manipulation should pass, got %v", err)
	}
	if len(bed.FailedVerdicts()) != 0 {
		t.Errorf("rule-consistent manipulation detected, contradicting §3.1: %v", bed.FailedVerdicts())
	}
	done, _ := bed.Completed()
	if done[0].State["moneySpent"].Int != 90 {
		t.Error("manipulation did not survive")
	}
}

func TestStrippedRulesDetected(t *testing.T) {
	bed, ag := buildBed(t, attack.RecordLie{}) // honest execution
	// Strip rule baggage before launch to simulate in-flight removal at
	// the first hop boundary.
	ag.ClearBaggage(appraisal.MechanismName)
	err := bed.Run("home", ag)
	if !errors.Is(err, core.ErrDetection) {
		t.Fatalf("err = %v, want ErrDetection", err)
	}
	if f := bed.FailedVerdicts(); len(f) == 0 || !strings.Contains(strings.Join(f[0].Evidence, " "), "missing") {
		t.Errorf("failed = %v", f)
	}
}

func TestForgedRulesDetected(t *testing.T) {
	bed, ag := buildBed(t, nil)
	// A host replaces the rules with permissive ones, signed by itself.
	forger, err := sigcrypto.GenerateKeyPair("forger")
	if err != nil {
		t.Fatal(err)
	}
	if err := bed.Reg.RegisterKeyPair(forger); err != nil {
		t.Fatal(err)
	}
	if err := appraisal.Attach(ag, appraisal.RuleSet{appraisal.MustRule("always", "true")}, forger); err != nil {
		t.Fatal(err)
	}
	errLaunch := bed.Run("home", ag)
	if !errors.Is(errLaunch, core.ErrDetection) {
		t.Fatalf("err = %v, want ErrDetection", errLaunch)
	}
	if f := bed.FailedVerdicts(); len(f) == 0 || !strings.Contains(strings.Join(f[0].Evidence, " "), "owner") {
		t.Errorf("failed = %v", f)
	}
}

func TestCheckAfterTaskAppraisesFinalState(t *testing.T) {
	// The final host's own session breaks the invariant; only
	// checkAfterTask can see it (there is no next host).
	bed := platformtest.New(t)
	for _, name := range []string{"home", "shop"} {
		name := name
		bed.AddHost(name, platformtest.HostOptions{
			Trusted:    name == "home",
			Mechanisms: func() []core.Mechanism { return []core.Mechanism{appraisal.New()} },
			Configure: func(c *host.Config) {
				if name == "shop" {
					c.Resources = map[string]value.Value{"price": value.Int(30)}
					c.Behavior = attack.DataManipulation{Var: "moneyRest", Val: value.Int(-1)}
				}
			},
		})
	}
	owner := ownerKeys(t, bed)
	// Task ends on the shop host itself.
	code := `
proc main() {
    moneyInitial = 100
    moneyRest = 100
    moneySpent = 0
    migrate("shop", "buy")
}
proc buy() {
    let price = read("price")
    moneySpent = moneySpent + price
    moneyRest = moneyRest - price
    done()
}`
	ag := bed.NewAgent("buyer2", code)
	if err := appraisal.Attach(ag, buyerRules, owner); err != nil {
		t.Fatal(err)
	}
	if err := bed.Run("home", ag); err != nil {
		t.Fatal(err)
	}
	var taskVerdict *core.Verdict
	for _, v := range bed.Verdicts() {
		if v.Moment == core.AfterTask {
			vv := v
			taskVerdict = &vv
		}
	}
	if taskVerdict == nil {
		t.Fatal("no checkAfterTask verdict")
	}
	if taskVerdict.OK {
		t.Error("final-state violation not caught by checkAfterTask")
	}
}

// TestRepeatDamageAttribution pins the voucher rules for appraisal's
// repeat-detection suppression: a prior failed verdict suppresses
// blame only when it is signed by its named checker and that checker
// is not the host now under suspicion — a cheater signing a fake
// "prior failure" as itself (or forging another host's voucher) must
// still be blamed.
func TestRepeatDamageAttribution(t *testing.T) {
	ctx := context.Background()
	reg := sigcrypto.NewRegistry()
	keys := make(map[string]*sigcrypto.KeyPair)
	for _, name := range []string{"mallory", "checker", "witness", "owner"} {
		kp, err := sigcrypto.GenerateKeyPair(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.RegisterKeyPair(kp); err != nil {
			t.Fatal(err)
		}
		keys[name] = kp
	}
	h, err := host.New(host.Config{Name: "checker", Keys: keys["checker"], Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	hc := &core.HostContext{Host: h}
	mech := appraisal.New()
	rules := appraisal.RuleSet{appraisal.MustRule("track", "total == hops")}

	mkAgent := func(forged []core.Verdict) *agent.Agent {
		ag, err := agent.New("vic", "owner", `proc main() { done() }`, "main")
		if err != nil {
			t.Fatal(err)
		}
		ag.SetVar("total", value.Int(5)) // violates total == hops
		ag.SetVar("hops", value.Int(1))
		if err := appraisal.Attach(ag, rules, keys["owner"]); err != nil {
			t.Fatal(err)
		}
		// Two sessions behind us: the checked session is hop 1 (ran on
		// mallory), so a hop-0 voucher is strictly earlier.
		ag.Route = []string{"witness", "mallory"}
		ag.Hop = 2
		if forged != nil {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(forged); err != nil {
				t.Fatal(err)
			}
			ag.SetBaggage("core/verdicts", buf.Bytes())
		}
		return ag
	}
	prior := func(checker string, signer *sigcrypto.KeyPair) core.Verdict {
		v := core.Verdict{
			AgentID: "vic", Mechanism: "appraisal", Moment: core.AfterSession,
			CheckedHost: "elsewhere", CheckedHop: 0, Checker: checker,
			OK: false, Suspect: "elsewhere", Reason: "earlier damage",
		}
		if signer != nil {
			v.Sign(signer)
		}
		return v
	}
	check := func(t *testing.T, forged []core.Verdict, wantSuspect string) {
		t.Helper()
		v, err := mech.CheckAfterSession(ctx, hc, mkAgent(forged))
		if err != nil {
			t.Fatal(err)
		}
		if v == nil || v.OK {
			t.Fatalf("violation not detected: %+v", v)
		}
		if v.Suspect != wantSuspect {
			t.Errorf("suspect = %q, want %q (reason: %s)", v.Suspect, wantSuspect, v.Reason)
		}
	}

	t.Run("fresh damage blames previous host", func(t *testing.T) {
		check(t, nil, "mallory")
	})
	t.Run("self-vouched prior failure does not excuse the suspect", func(t *testing.T) {
		check(t, []core.Verdict{prior("mallory", keys["mallory"])}, "mallory")
	})
	t.Run("voucher with forged signature is refused", func(t *testing.T) {
		v := prior("witness", keys["mallory"]) // mallory cannot sign as witness
		check(t, []core.Verdict{v}, "mallory")
	})
	t.Run("voucher for another agent is refused", func(t *testing.T) {
		v := core.Verdict{
			AgentID: "other-agent", Mechanism: "appraisal", Moment: core.AfterSession,
			CheckedHop: 0, Checker: "witness", OK: false, Suspect: "elsewhere",
		}
		v.Sign(keys["witness"])
		check(t, []core.Verdict{v}, "mallory")
	})
	t.Run("genuine third-party voucher suppresses attribution", func(t *testing.T) {
		check(t, []core.Verdict{prior("witness", keys["witness"])}, "")
	})
}
