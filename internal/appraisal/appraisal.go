// Package appraisal implements the "state appraisal" mechanism of
// Farmer, Guttman and Swarup as analysed by the paper (§3.1): the
// receiving host "checks the validity of the state of an agent as the
// first step of executing an agent arrived at a host", using "a set of
// conditions that have to be fulfilled", "formulated by the programmer
// who stated relations between certain elements of the state".
//
// Its place in the framework's attribute space: moment = after every
// session (on arrival), reference data = only the arrived (resulting)
// state, algorithm = rules (non-Turing-complete first-order
// conditions). Because neither the input nor the initial state is
// available, the mechanism detects only attacks that leave the state
// rule-inconsistent: "the host may modify the execution and/or the
// prices at its will without being detected as it is impossible to
// find an inconsistency in the resulting state without the used
// prices" — a limitation the detection-matrix tests pin down.
//
// Rules travel with the agent, signed by the owner at launch, so a
// malicious host can neither weaken nor strip them unnoticed.
package appraisal

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"repro/internal/agent"
	"repro/internal/agentlang"
	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/sigcrypto"
	"repro/internal/value"
)

// MechanismName is the baggage key and verdict label.
const MechanismName = "appraisal"

// Rule is one named condition over agent state.
type Rule struct {
	Name string
	expr *agentlang.Expr
}

// NewRule compiles a rule from an expression source like
// "moneySpent + moneyRest == moneyInitial".
func NewRule(name, src string) (Rule, error) {
	e, err := agentlang.ParseExpression(src)
	if err != nil {
		return Rule{}, fmt.Errorf("appraisal: rule %q: %w", name, err)
	}
	return Rule{Name: name, expr: e}, nil
}

// MustRule panics on compile errors; for static rule tables.
func MustRule(name, src string) Rule {
	r, err := NewRule(name, src)
	if err != nil {
		panic(err)
	}
	return r
}

// Source returns the rule's expression text.
func (r Rule) Source() string { return r.expr.Source() }

// Holds evaluates the rule against a state.
func (r Rule) Holds(st value.State) (bool, error) {
	return r.expr.EvalBool(st)
}

// RuleSet is an ordered set of rules; it implements core.Checker so it
// can serve as the "rules" checking algorithm in any mechanism.
type RuleSet []Rule

var _ core.Checker = (RuleSet)(nil)

// Check implements core.Checker: every rule must hold on the resulting
// state.
func (rs RuleSet) Check(cc *core.CheckContext) (bool, []string, error) {
	st, err := cc.ResultingState()
	if err != nil {
		return false, nil, err
	}
	return rs.evaluate(st)
}

// evaluate applies all rules to a state directly.
func (rs RuleSet) evaluate(st value.State) (bool, []string, error) {
	var violations []string
	for _, r := range rs {
		holds, err := r.Holds(st)
		if err != nil {
			violations = append(violations, fmt.Sprintf("rule %q not evaluable: %v", r.Name, err))
			continue
		}
		if !holds {
			violations = append(violations, fmt.Sprintf("rule %q violated: %s", r.Name, r.Source()))
		}
	}
	return len(violations) == 0, violations, nil
}

// wireRules is the signed baggage carrying rule sources.
type wireRules struct {
	Names   []string
	Sources []string
	Sig     sigcrypto.Signature
}

func rulesDigest(agentID string, names, sources []string) canon.Digest {
	fields := [][]byte{[]byte("appraisal-rules"), []byte(agentID)}
	for i := range names {
		fields = append(fields, []byte(names[i]), []byte(sources[i]))
	}
	return canon.HashTuple(fields...)
}

// Attach signs the rule set with the owner's key and stores it in the
// agent's baggage. Call once at launch, before the first session.
func Attach(ag *agent.Agent, rules RuleSet, owner *sigcrypto.KeyPair) error {
	w := wireRules{}
	for _, r := range rules {
		w.Names = append(w.Names, r.Name)
		w.Sources = append(w.Sources, r.Source())
	}
	w.Sig = owner.SignDigest(rulesDigest(ag.ID, w.Names, w.Sources))
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return fmt.Errorf("appraisal: encoding rules: %w", err)
	}
	ag.SetBaggage(MechanismName, buf.Bytes())
	return nil
}

// Mechanism evaluates the agent's signed rules on every arrival and on
// task end.
type Mechanism struct {
	core.BaseMechanism
}

var (
	_ core.Mechanism               = (*Mechanism)(nil)
	_ core.ResultingStateRequester = (*Mechanism)(nil)
)

// New returns the mechanism.
func New() *Mechanism { return &Mechanism{} }

// Name implements core.Mechanism.
func (m *Mechanism) Name() string { return MechanismName }

// RequestsResultingState declares the only reference data appraisal
// uses: the state as it arrived (Fig. 4).
func (m *Mechanism) RequestsResultingState() {}

// CheckAfterSession appraises the arrived state.
func (m *Mechanism) CheckAfterSession(_ context.Context, hc *core.HostContext, ag *agent.Agent) (*core.Verdict, error) {
	if ag.Hop == 0 {
		return nil, nil
	}
	return m.appraise(hc, ag, core.AfterSession)
}

// CheckAfterTask appraises the final state on the last host. By this
// point the final session has run, so ag.State is the state the task
// produced.
func (m *Mechanism) CheckAfterTask(_ context.Context, hc *core.HostContext, ag *agent.Agent, rec *host.SessionRecord) (*core.Verdict, error) {
	return m.appraise(hc, ag, core.AfterTask)
}

func (m *Mechanism) appraise(hc *core.HostContext, ag *agent.Agent, moment core.Moment) (*core.Verdict, error) {
	prev := ""
	if len(ag.Route) > 0 {
		prev = ag.Route[len(ag.Route)-1]
	}
	v := &core.Verdict{
		Mechanism:   MechanismName,
		Moment:      moment,
		CheckedHost: prev,
		CheckedHop:  ag.Hop - 1,
		Checker:     hc.Host.Name(),
		Suspect:     prev,
	}
	ok, violations, err := m.loadRules(hc, ag, ag.State)
	if err != nil {
		return nil, err
	}
	if !ok {
		v.OK = false
		v.Reason = "arrived state violates owner rules"
		v.Evidence = violations
		// Appraisal's reference data is only the arrived state, so a
		// rule violation alone cannot say *which* session broke it. If
		// the agent's travelling record already carries a failed
		// appraisal verdict from an earlier hop, the damage predates
		// the previous session: under a policy that let the agent
		// continue, blaming the previous host would charge an innocent
		// intermediary. The repeat detection stays on record but
		// travels unattributed.
		//
		// Verdict baggage is host-writable, so a prior failure only
		// suppresses attribution if it is a verifiable voucher: signed
		// by its named checker, bound to this agent, and vouched by
		// someone other than the host now under suspicion (a cheater
		// can sign a "prior failure" as itself; it cannot forge another
		// host's signature). Refusing the suspect's own voucher can
		// transiently re-blame an innocent intermediary that detected
		// someone else earlier — but that charge is self-correcting
		// (escalated checking exonerates an honest host), whereas
		// honoring it would let a cheater dodge reputation forever.
		// Two colluding consecutive hosts can still launder blame —
		// the protocol family's documented collusion limit (§5.1), not
		// a new hole.
		reg := hc.Host.Registry()
		// Structurally plausible vouchers are collected first, then
		// their signatures checked in one batch; the first verifying
		// voucher (in record order) wins, exactly as a scalar
		// VerifySig-per-prior loop would decide.
		var cand []sigcrypto.BatchEntry
		var candHops []int
		for _, prior := range core.AgentVerdicts(ag) {
			if prior.Mechanism != MechanismName || prior.OK || prior.CheckedHop >= v.CheckedHop {
				continue
			}
			if prior.AgentID != ag.ID || prior.Checker == v.Suspect {
				continue
			}
			entry, ok := prior.SigBatchEntry()
			if !ok {
				continue
			}
			cand = append(cand, entry)
			candHops = append(candHops, prior.CheckedHop)
		}
		if len(cand) > 0 {
			errs := reg.VerifyBatch(cand)
			for i := range cand {
				if errs != nil && errs[i] != nil {
					continue
				}
				v.Suspect = ""
				v.Reason = fmt.Sprintf("arrived state violates owner rules (damage on record since session %d; previous host not blamed)", candHops[i])
				break
			}
		}
		return v, nil
	}
	v.OK = true
	return v, nil
}

// loadRules verifies and compiles the signed rule baggage, then
// evaluates it against st. A missing or unverifiable rule set is a
// violation (the rules were stripped or tampered with).
func (m *Mechanism) loadRules(hc *core.HostContext, ag *agent.Agent, st value.State) (bool, []string, error) {
	data, present := ag.GetBaggage(MechanismName)
	if !present {
		return false, []string{"rule baggage missing (stripped or never attached)"}, nil
	}
	var w wireRules
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return false, []string{fmt.Sprintf("malformed rule baggage: %v", err)}, nil
	}
	if len(w.Names) != len(w.Sources) {
		return false, []string{"malformed rule baggage: name/source count mismatch"}, nil
	}
	d := rulesDigest(ag.ID, w.Names, w.Sources)
	if err := hc.Host.Registry().VerifyDigest(d, w.Sig); err != nil {
		return false, []string{fmt.Sprintf("rule signature invalid: %v", err)}, nil
	}
	if w.Sig.Signer != ag.Owner {
		return false, []string{fmt.Sprintf("rules signed by %q, not by owner %q", w.Sig.Signer, ag.Owner)}, nil
	}
	rules := make(RuleSet, 0, len(w.Names))
	for i := range w.Names {
		r, err := NewRule(w.Names[i], w.Sources[i])
		if err != nil {
			return false, []string{fmt.Sprintf("rule %q does not compile: %v", w.Names[i], err)}, nil
		}
		rules = append(rules, r)
	}
	return rules.evaluate(st)
}
