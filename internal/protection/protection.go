// Package protection assembles mechanism stacks for the protection
// levels spanned by the framework's attribute space (paper §4.1). The
// agent programmer picks a Level; the platform instantiates the
// matching mechanisms on every node.
//
// The levels trace the paper's "protection bandwidth":
//
//   - LevelNone: nothing — the unprotected baseline.
//   - LevelSigned: whole-agent signatures only (the paper's "plain"
//     measurement configuration: "without using the protocol (but
//     being signed and verified as a whole)").
//   - LevelRules: signatures + state appraisal ("the lower end of the
//     protection scale ... uses only the resulting agent state, and
//     employs rules").
//   - LevelTraces: signatures + Vigna traces (suspicion-driven owner
//     audit; requires trace-recording hosts).
//   - LevelFull: signatures + the example mechanism ("the higher end":
//     every session checked by the next host via re-execution).
//
// Levels are independent presets, not a strict subset chain; custom
// combinations can always be assembled by hand from the mechanism
// packages.
package protection

import (
	"fmt"

	"repro/internal/agentlang"
	appraisalpkg "repro/internal/appraisal"
	"repro/internal/core"
	"repro/internal/refproto"
	"repro/internal/stopwatch"
	"repro/internal/vigna"
	"repro/internal/wholesig"
)

// Level selects a protection preset.
type Level int

// The presets, ordered by increasing protection.
const (
	LevelNone Level = iota + 1
	LevelSigned
	LevelRules
	LevelTraces
	LevelFull
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelSigned:
		return "signed"
	case LevelRules:
		return "rules"
	case LevelTraces:
		return "traces"
	case LevelFull:
		return "full"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel converts a string (as used by command-line flags).
func ParseLevel(s string) (Level, error) {
	for _, l := range []Level{LevelNone, LevelSigned, LevelRules, LevelTraces, LevelFull} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("protection: unknown level %q (want none|signed|rules|traces|full)", s)
}

// Options carries per-level parameters.
type Options struct {
	// Timer receives sign&verify time accounting; may be nil.
	Timer *stopwatch.PhaseTimer
	// Compare overrides the resulting-state comparison for LevelFull.
	Compare core.StateComparer
	// Fuel bounds checking re-executions.
	Fuel int64
	// ExecHook observes checking re-executions (benchmark phase
	// timing); may be nil.
	ExecHook agentlang.Hook
}

// Mechanisms builds a fresh per-node mechanism stack for the level.
// Call once per node: mechanism instances hold per-node protocol state.
func Mechanisms(l Level, opts Options) ([]core.Mechanism, error) {
	switch l {
	case LevelNone:
		return nil, nil
	case LevelSigned:
		return []core.Mechanism{wholesig.New(opts.Timer)}, nil
	case LevelRules:
		return []core.Mechanism{wholesig.New(opts.Timer), appraisalpkg.New()}, nil
	case LevelTraces:
		return []core.Mechanism{wholesig.New(opts.Timer), vigna.New()}, nil
	case LevelFull:
		return []core.Mechanism{
			wholesig.New(opts.Timer),
			refproto.New(refproto.Config{Compare: opts.Compare, Fuel: opts.Fuel, Timer: opts.Timer, ExecHook: opts.ExecHook}),
		}, nil
	default:
		return nil, fmt.Errorf("protection: unknown level %d", int(l))
	}
}

// NeedsTraceRecording reports whether hosts must record execution
// traces for the level to function.
func NeedsTraceRecording(l Level) bool { return l == LevelTraces }
