// Package protection assembles mechanism stacks for the protection
// levels spanned by the framework's attribute space (paper §4.1). The
// agent programmer picks a Level; the platform instantiates the
// matching mechanisms on every node.
//
// The levels trace the paper's "protection bandwidth":
//
//   - LevelNone: nothing — the unprotected baseline.
//   - LevelSigned: whole-agent signatures only (the paper's "plain"
//     measurement configuration: "without using the protocol (but
//     being signed and verified as a whole)").
//   - LevelRules: signatures + state appraisal ("the lower end of the
//     protection scale ... uses only the resulting agent state, and
//     employs rules").
//   - LevelTraces: signatures + Vigna traces (suspicion-driven owner
//     audit; requires trace-recording hosts).
//   - LevelFull: signatures + the example mechanism ("the higher end":
//     every session checked by the next host via re-execution).
//   - LevelAdaptive: signatures, reputation gossip, appraisal rules,
//     and the example mechanism behind a reputation gate — cheap rules
//     against hosts in good standing, escalating to full re-execution
//     when the executing host's suspicion crosses the gate threshold
//     (plus a baseline audit cadence). The paper's suspicion-driven
//     checking as a first-class preset; see internal/policy.
//
// Levels are independent presets, not a strict subset chain; custom
// combinations can always be assembled by hand from the mechanism
// packages.
package protection

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/agentlang"
	appraisalpkg "repro/internal/appraisal"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/policy"
	"repro/internal/refproto"
	"repro/internal/shardstore"
	"repro/internal/stopwatch"
	"repro/internal/vigna"
	"repro/internal/wholesig"
)

// newVigna builds the traces mechanism, durable under
// Options.DataDir/vigna when a data dir is set.
func newVigna(opts Options) (*vigna.Mechanism, error) {
	if opts.DataDir == "" {
		return vigna.New(), nil
	}
	backend, err := shardstore.OpenWAL(filepath.Join(opts.DataDir, "vigna"), shardstore.WALConfig{})
	if err != nil {
		return nil, fmt.Errorf("protection: opening vigna wal: %w", err)
	}
	return vigna.NewDurable(backend)
}

// Level selects a protection preset.
type Level int

// The presets, ordered by increasing protection.
const (
	LevelNone Level = iota + 1
	LevelSigned
	LevelRules
	LevelTraces
	LevelFull
	LevelAdaptive
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelSigned:
		return "signed"
	case LevelRules:
		return "rules"
	case LevelTraces:
		return "traces"
	case LevelFull:
		return "full"
	case LevelAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel converts a string (as used by command-line flags).
func ParseLevel(s string) (Level, error) {
	for _, l := range []Level{LevelNone, LevelSigned, LevelRules, LevelTraces, LevelFull, LevelAdaptive} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("protection: unknown level %q (want none|signed|rules|traces|full|adaptive)", s)
}

// Options carries per-level parameters.
type Options struct {
	// Timer receives sign&verify time accounting; may be nil.
	Timer *stopwatch.PhaseTimer
	// Compare overrides the resulting-state comparison for LevelFull.
	Compare core.StateComparer
	// Fuel bounds checking re-executions.
	Fuel int64
	// ExecHook observes checking re-executions (benchmark phase
	// timing); may be nil.
	ExecHook agentlang.Hook
	// AdaptivePolicy tunes LevelAdaptive's reputation policy (ledger,
	// quarantine threshold); zero values select the policy package
	// defaults. Other levels ignore it.
	AdaptivePolicy policy.ReputationConfig
	// AdaptiveGate tunes LevelAdaptive's escalation gate (suspicion
	// threshold, baseline audit cadence); zero values select the policy
	// package defaults. Other levels ignore it.
	AdaptiveGate policy.GateConfig
	// DataDir makes the stack's durable protection state persistent
	// under this directory: LevelAdaptive's reputation ledger (ledger/)
	// and LevelTraces' retained trace packages (vigna/) are WAL-backed
	// and replayed on Assemble. Empty keeps them in memory. Pair it
	// with core.NodeConfig.DataDir (the same per-node directory works
	// for both — the subdirectories do not collide); see
	// docs/OPERATIONS.md.
	DataDir string
	// Clock overrides the stack's clock for LevelAdaptive: the
	// default-built ledger's decay clock and the gossip mechanism's
	// extract timestamps. Campaign harnesses on virtual time set it;
	// nil means time.Now. A caller-supplied AdaptivePolicy/AdaptiveGate
	// ledger keeps its own Now — only gossip adopts the clock then.
	Clock func() time.Time
	// OnPersistError receives the stack's durable-state write failures
	// (the adaptive ledger WAL; fires once, then the store is degraded
	// to memory-only). Nil means failures are silent. Pair it with
	// core.NodeConfig.OnPersistError so both the node's stores and the
	// stack's report through one channel.
	OnPersistError func(error)
	// Events, when non-nil, is the node's event bus: LevelAdaptive's
	// ledger publishes escalation crossings, its gate level-escalation
	// decisions, and its gossip mechanism merge/exchange/cooldown
	// outcomes. Pair it with core.NodeConfig.Events (the pipeline
	// wrapping the same bus). A caller-supplied AdaptivePolicy/
	// AdaptiveGate ledger keeps its own bus wiring — only the gate and
	// gossip adopt this one then. Other levels ignore it.
	Events *events.Bus
	// WAL, when non-nil, backs LevelAdaptive's reputation ledger with a
	// handle on this shared group-commit WAL (consumer name "ledger")
	// instead of a private WAL under DataDir — pair it with
	// core.NodeConfig.SharedWAL so one node's journal, quarantine, and
	// ledger share one fsync stream. Takes precedence over DataDir for
	// the ledger; ignored when the caller supplies its own ledger.
	WAL *shardstore.SharedWAL
	// DisableBatchVerify forces scalar signature verification in
	// LevelAdaptive's gossip merge path (see policy.Gossip
	// .SetBatchVerify). The default (false) verifies gossip bundles in
	// one batch; detection outcomes are identical either way.
	DisableBatchVerify bool
	// AdmissionThreshold, when positive, builds a ledger-backed
	// admission policy into LevelAdaptive's stack: deliveries from
	// hosts whose suspicion on this node's ledger is at/above the
	// threshold are refused before intake (wire Stack.Admission into
	// core.NodeConfig.Admission). 0 disables admission control. Other
	// levels ignore it — admission is priced off the adaptive ledger.
	AdmissionThreshold float64
	// LedgerHalfLife overrides the suspicion decay half-life of the
	// ledger LevelAdaptive builds here (0 = policy.DefaultHalfLife,
	// negative disables decay). Ignored when the caller supplies its
	// own ledger. Adversary campaigns treat this as an attack surface:
	// a short half-life is what a threshold-evading adversary rides.
	LedgerHalfLife time.Duration
}

// Stack is one node's protection assembly: the mechanism list plus the
// verdict policy driving the node's response to each verdict. For
// LevelAdaptive the reputation ledger and escalation gate behind the
// policy are exposed for inspection (benchmarks, status calls).
type Stack struct {
	Mechanisms []core.Mechanism
	// Policy is the node's verdict policy; nil selects the core
	// built-ins (strict, or permissive with ContinueOnDetection).
	Policy core.VerdictPolicy
	// Ledger, Gate, and Gossip are non-nil only for LevelAdaptive.
	// Gossip is exposed so deployments can wire the node's anti-entropy
	// exchange (core.NodeConfig.Exchange starts it through the
	// mechanism; Stack.Close stops it with the rest of the stack) and
	// inspect its stats.
	Ledger *policy.Ledger
	Gate   *policy.Gate
	Gossip *policy.Gossip
	// Admission is the ledger-backed admission policy, non-nil only for
	// LevelAdaptive with Options.AdmissionThreshold > 0; wire it into
	// core.NodeConfig.Admission.
	Admission core.AdmissionPolicy
}

// Close flushes and releases the stack's durable state: the adaptive
// ledger and any mechanism holding a persistence backend (vigna's
// retained-package store). A no-op for memory-only stacks. Call it
// after the owning node's Close, once no mechanism can be invoked.
func (s Stack) Close() error {
	var errs []error
	if s.Ledger != nil {
		errs = append(errs, s.Ledger.Close())
	}
	for _, m := range s.Mechanisms {
		if c, ok := m.(io.Closer); ok {
			errs = append(errs, c.Close())
		}
	}
	return errors.Join(errs...)
}

// Assemble builds a fresh per-node protection stack for the level.
// Call once per node: mechanism instances (and the adaptive level's
// ledger) hold per-node state. Cross-node suspicion still propagates —
// as signed gossip in agent baggage, not shared memory.
func Assemble(l Level, opts Options) (Stack, error) {
	switch l {
	case LevelNone:
		return Stack{}, nil
	case LevelSigned:
		return Stack{Mechanisms: []core.Mechanism{wholesig.New(opts.Timer)}}, nil
	case LevelRules:
		return Stack{Mechanisms: []core.Mechanism{wholesig.New(opts.Timer), appraisalpkg.New()}}, nil
	case LevelTraces:
		v, err := newVigna(opts)
		if err != nil {
			return Stack{}, err
		}
		return Stack{Mechanisms: []core.Mechanism{wholesig.New(opts.Timer), v}}, nil
	case LevelFull:
		return Stack{Mechanisms: []core.Mechanism{
			wholesig.New(opts.Timer),
			refproto.New(refproto.Config{Compare: opts.Compare, Fuel: opts.Fuel, Timer: opts.Timer, ExecHook: opts.ExecHook}),
		}}, nil
	case LevelAdaptive:
		// One ledger per node, shared by the policy (writes suspicion),
		// the gossip mechanism (imports/exports it), and the gate
		// (reads it to price the next check).
		led := opts.AdaptivePolicy.Ledger
		if led == nil {
			led = opts.AdaptiveGate.Ledger
		}
		if led == nil {
			// The escalation event should fire at the same suspicion the
			// gate actually escalates at, so the gate's threshold (default
			// resolved by NewGate) is wired into the ledger here.
			lcfg := policy.LedgerConfig{
				Now:            opts.Clock,
				OnPersistError: opts.OnPersistError,
				Bus:            opts.Events,
				EscalateAt:     opts.AdaptiveGate.EscalateThreshold,
				HalfLife:       opts.LedgerHalfLife,
			}
			switch {
			case opts.WAL != nil:
				h, err := opts.WAL.Handle("ledger")
				if err != nil {
					return Stack{}, fmt.Errorf("protection: claiming shared ledger stream: %w", err)
				}
				lcfg.Backend = h
			case opts.DataDir != "":
				backend, err := shardstore.OpenWAL(filepath.Join(opts.DataDir, "ledger"), shardstore.WALConfig{})
				if err != nil {
					return Stack{}, fmt.Errorf("protection: opening ledger wal: %w", err)
				}
				lcfg.Backend = backend
			}
			var err error
			led, err = policy.OpenLedger(lcfg)
			if err != nil {
				return Stack{}, err
			}
		}
		pcfg := opts.AdaptivePolicy
		pcfg.Ledger = led
		gcfg := opts.AdaptiveGate
		gcfg.Ledger = led
		if gcfg.Bus == nil {
			gcfg.Bus = opts.Events
		}
		gate := policy.NewGate(gcfg)
		// Onion order: wholesig outermost (its departure signature
		// covers the gossip and protocol baggage), gossip next so
		// imported suspicion is in the ledger before this arrival's own
		// verdicts are priced, then the cheap rules, then the gated
		// re-execution protocol.
		gossip := policy.NewGossip(led)
		if opts.Clock != nil {
			gossip.SetClock(opts.Clock)
		}
		gossip.SetBus(opts.Events)
		if opts.DisableBatchVerify {
			gossip.SetBatchVerify(false)
		}
		// Urgent piggybacking fires exactly at the policy's quarantine
		// threshold: a detection severe enough to quarantine is the one
		// detection a calling peer should hear about in the same RPC.
		urgentAt := pcfg.QuarantineThreshold
		if urgentAt == 0 {
			urgentAt = policy.DefaultQuarantineThreshold
		}
		gossip.SetUrgentThreshold(urgentAt)
		mechs := []core.Mechanism{
			wholesig.New(opts.Timer),
			gossip,
			appraisalpkg.New(),
			refproto.New(refproto.Config{
				Compare: opts.Compare, Fuel: opts.Fuel, Timer: opts.Timer,
				ExecHook: opts.ExecHook, ReExecGate: gate.ShouldReExecute,
			}),
		}
		st := Stack{Mechanisms: mechs, Policy: policy.NewReputation(pcfg), Ledger: led, Gate: gate, Gossip: gossip}
		if opts.AdmissionThreshold > 0 {
			// Admission reads the same ledger the gate prices checks
			// from: one body of evidence, escalating consequences —
			// check harder at 0.5, refuse intake at the admission
			// threshold, quarantine at 2.0.
			st.Admission = policy.NewAdmission(policy.AdmissionConfig{
				Ledger:          led,
				RefuseThreshold: opts.AdmissionThreshold,
			})
		}
		return st, nil
	default:
		return Stack{}, fmt.Errorf("protection: unknown level %d", int(l))
	}
}

// Mechanisms builds a fresh per-node mechanism stack for the level.
// Call once per node. LevelAdaptive is refused here: its mechanism
// list is inseparable from its verdict policy (the gate's ledger is
// fed by the policy), and silently dropping the policy would deploy a
// weaker stack than asked for — use Assemble.
func Mechanisms(l Level, opts Options) ([]core.Mechanism, error) {
	if l == LevelAdaptive {
		return nil, fmt.Errorf("protection: %s carries a verdict policy; use Assemble and set NodeConfig.Policy", l)
	}
	st, err := Assemble(l, opts)
	return st.Mechanisms, err
}

// NeedsTraceRecording reports whether hosts must record execution
// traces for the level to function.
func NeedsTraceRecording(l Level) bool { return l == LevelTraces }
