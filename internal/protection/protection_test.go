package protection

import (
	"testing"

	"repro/internal/stopwatch"
)

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelNone, LevelSigned, LevelRules, LevelTraces, LevelFull} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("bogus level parsed")
	}
	if Level(42).String() != "level(42)" {
		t.Error("unknown level String")
	}
}

func TestMechanismStacks(t *testing.T) {
	timer := &stopwatch.PhaseTimer{}
	tests := []struct {
		level Level
		names []string
	}{
		{LevelNone, nil},
		{LevelSigned, []string{"wholesig"}},
		{LevelRules, []string{"wholesig", "appraisal"}},
		{LevelTraces, []string{"wholesig", "vigna"}},
		{LevelFull, []string{"wholesig", "refproto"}},
	}
	for _, tt := range tests {
		mechs, err := Mechanisms(tt.level, Options{Timer: timer})
		if err != nil {
			t.Fatalf("%s: %v", tt.level, err)
		}
		if len(mechs) != len(tt.names) {
			t.Fatalf("%s: %d mechanisms, want %d", tt.level, len(mechs), len(tt.names))
		}
		for i, want := range tt.names {
			if mechs[i].Name() != want {
				t.Errorf("%s[%d] = %s, want %s", tt.level, i, mechs[i].Name(), want)
			}
		}
	}
	if _, err := Mechanisms(Level(99), Options{}); err == nil {
		t.Error("unknown level built a stack")
	}
}

func TestMechanismInstancesAreFresh(t *testing.T) {
	a, err := Mechanisms(LevelFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mechanisms(LevelFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("mechanism %d shared between calls (per-node state would leak)", i)
		}
	}
}

func TestNeedsTraceRecording(t *testing.T) {
	if !NeedsTraceRecording(LevelTraces) {
		t.Error("traces level does not need recording")
	}
	if NeedsTraceRecording(LevelFull) {
		t.Error("full level should not require trace recording (input log suffices)")
	}
}
