package protection

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stopwatch"
)

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelNone, LevelSigned, LevelRules, LevelTraces, LevelFull, LevelAdaptive} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("bogus level parsed")
	}
	if Level(42).String() != "level(42)" {
		t.Error("unknown level String")
	}
}

func TestMechanismStacks(t *testing.T) {
	timer := &stopwatch.PhaseTimer{}
	tests := []struct {
		level Level
		names []string
	}{
		{LevelNone, nil},
		{LevelSigned, []string{"wholesig"}},
		{LevelRules, []string{"wholesig", "appraisal"}},
		{LevelTraces, []string{"wholesig", "vigna"}},
		{LevelFull, []string{"wholesig", "refproto"}},
		{LevelAdaptive, []string{"wholesig", "reputation", "appraisal", "refproto"}},
	}
	for _, tt := range tests {
		st, err := Assemble(tt.level, Options{Timer: timer})
		if err != nil {
			t.Fatalf("%s: %v", tt.level, err)
		}
		if len(st.Mechanisms) != len(tt.names) {
			t.Fatalf("%s: %d mechanisms, want %d", tt.level, len(st.Mechanisms), len(tt.names))
		}
		for i, want := range tt.names {
			if st.Mechanisms[i].Name() != want {
				t.Errorf("%s[%d] = %s, want %s", tt.level, i, st.Mechanisms[i].Name(), want)
			}
		}
	}
	if _, err := Mechanisms(Level(99), Options{}); err == nil {
		t.Error("unknown level built a stack")
	}
	// The legacy wrapper must refuse the one level whose stack is
	// inseparable from its policy, not silently weaken it.
	if _, err := Mechanisms(LevelAdaptive, Options{}); err == nil {
		t.Error("Mechanisms(LevelAdaptive) should refuse; the policy would be dropped")
	}
}

func TestMechanismInstancesAreFresh(t *testing.T) {
	a, err := Mechanisms(LevelFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mechanisms(LevelFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("mechanism %d shared between calls (per-node state would leak)", i)
		}
	}
}

func TestNeedsTraceRecording(t *testing.T) {
	if !NeedsTraceRecording(LevelTraces) {
		t.Error("traces level does not need recording")
	}
	if NeedsTraceRecording(LevelFull) {
		t.Error("full level should not require trace recording (input log suffices)")
	}
	if NeedsTraceRecording(LevelAdaptive) {
		t.Error("adaptive level should not require trace recording (escalation re-executes from the input log)")
	}
}

func TestAssembleAdaptive(t *testing.T) {
	st, err := Assemble(LevelAdaptive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy == nil || st.Ledger == nil || st.Gate == nil {
		t.Fatalf("adaptive stack incomplete: %+v", st)
	}
	if st.Gate.Ledger() != st.Ledger {
		t.Error("gate does not share the stack ledger")
	}
	// The policy writes the same ledger the gate reads: one failed
	// check against a host escalates its next session.
	v := core.Verdict{Mechanism: "test", Moment: core.AfterSession, CheckedHost: "shady", Suspect: "shady"}
	st.Policy.Decide("ag", v)
	if !st.Gate.ShouldReExecute("shady") {
		t.Error("failed verdict did not escalate the suspect's next session")
	}
	// Non-adaptive levels carry no policy.
	if st, err := Assemble(LevelFull, Options{}); err != nil || st.Policy != nil || st.Ledger != nil {
		t.Errorf("full stack = %+v, %v; want mechanisms only", st, err)
	}
}
