//go:build race

// Package testutil carries small cross-cutting test helpers.
package testutil

// RaceEnabled reports whether the binary was built with the race
// detector; allocation-ceiling tests skip under it because the
// detector's bookkeeping adds allocations (notably around sync.Pool).
const RaceEnabled = true
