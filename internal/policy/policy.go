package policy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/shardstore"
)

// Defaults for the reputation policy and the adaptive gate.
const (
	// DefaultQuarantineThreshold is the suspicion at which a failed
	// check quarantines instead of flagging: roughly "a repeat offender
	// within the decay window".
	DefaultQuarantineThreshold = 2.0
	// DefaultEscalateThreshold is the suspicion at which the adaptive
	// gate stops trusting a host and re-executes every one of its
	// sessions: one failed check within the decay window is enough.
	DefaultEscalateThreshold = 0.5
	// DefaultAuditInterval is the baseline audit cadence of the
	// adaptive gate: every Kth session of a host is fully checked even
	// when its reputation is clean, so a host that only ever cheats
	// subtly (never tripping the cheap rules) is still caught within K
	// sessions.
	DefaultAuditInterval = 16
)

// ReputationConfig parameterizes the reputation policy.
type ReputationConfig struct {
	// Ledger is the per-host suspicion ledger; nil means a fresh
	// default ledger. Share one instance with the Gate and Gossip
	// mechanism of the same node.
	Ledger *Ledger
	// QuarantineThreshold is the suspicion at/above which a failed
	// check quarantines; 0 means DefaultQuarantineThreshold.
	QuarantineThreshold float64
	// FirstOffenseQuarantines restores the strict behaviour for
	// deployments that want the ledger without leniency: every failed
	// check quarantines, reputation still accumulates and gossips.
	FirstOffenseQuarantines bool
}

// Reputation is a core.VerdictPolicy that fuses every verdict into the
// ledger and escalates consequences with accumulated suspicion: a first
// offense is flagged and reported to the owner; a repeat offender
// (suspicion at the quarantine threshold) is quarantined.
type Reputation struct {
	cfg ReputationConfig
}

var (
	_ core.VerdictPolicy      = (*Reputation)(nil)
	_ core.ReputationReporter = (*Reputation)(nil)
)

// NewReputation builds the policy.
func NewReputation(cfg ReputationConfig) *Reputation {
	if cfg.Ledger == nil {
		cfg.Ledger = NewLedger(LedgerConfig{})
	}
	if cfg.QuarantineThreshold == 0 {
		cfg.QuarantineThreshold = DefaultQuarantineThreshold
	}
	return &Reputation{cfg: cfg}
}

// Ledger returns the policy's ledger, for sharing with the adaptive
// gate and the gossip mechanism.
func (p *Reputation) Ledger() *Ledger { return p.cfg.Ledger }

// Name implements core.VerdictPolicy.
func (p *Reputation) Name() string { return "reputation" }

// Decide implements core.VerdictPolicy.
func (p *Reputation) Decide(agentID string, v core.Verdict) core.Decision {
	subject := v.Suspect
	if v.OK && subject == "" {
		subject = v.CheckedHost
	}
	if v.OK {
		p.cfg.Ledger.Observe(subject, true, 0)
		return core.Decision{}
	}
	if subject == "" {
		// An unattributed failure (e.g. appraisal re-detecting damage
		// already on record): worth flagging and reporting, but there
		// is no principal to charge.
		return core.Decision{Flag: true, NotifyOwner: true, Reason: "unattributed failed check (no suspect named)"}
	}
	s := p.cfg.Ledger.Observe(subject, false, 0)
	if p.cfg.FirstOffenseQuarantines || s >= p.cfg.QuarantineThreshold {
		return core.Decision{
			Quarantine:  true,
			NotifyOwner: true,
			Reason:      fmt.Sprintf("suspicion %.2f against %s at/above quarantine threshold %.2f", s, subject, p.cfg.QuarantineThreshold),
		}
	}
	return core.Decision{
		Flag:        true,
		NotifyOwner: true,
		Reason:      fmt.Sprintf("first-offense leniency: suspicion %.2f against %s below threshold %.2f", s, subject, p.cfg.QuarantineThreshold),
	}
}

// HostReputation implements core.ReputationReporter.
func (p *Reputation) HostReputation(host string) (core.HostReputation, bool) {
	return p.cfg.Ledger.Report(host)
}

// GateConfig parameterizes the adaptive-checking gate.
type GateConfig struct {
	// Ledger supplies per-host suspicion; required.
	Ledger *Ledger
	// EscalateThreshold is the suspicion at/above which every session
	// of the host is fully checked; 0 means DefaultEscalateThreshold.
	EscalateThreshold float64
	// AuditInterval fully checks every Kth session of each host
	// regardless of reputation; 0 means DefaultAuditInterval, negative
	// disables baseline audits (reputation-only escalation).
	AuditInterval int
	// Bus, when non-nil, receives a level-escalation event each time
	// suspicion (not the baseline audit cadence) forces a full
	// re-execution check of a host's session.
	Bus *events.Bus
}

// Gate decides, per checked session, whether the adaptive protection
// level pays for the expensive check (re-execution) or trusts the cheap
// appraisal rules — the paper's suspicion-driven checking: "checks ...
// only when the owner suspects fraud", generalized to a continuous
// reputation instead of a one-shot hunch, plus a baseline audit cadence
// so subtle cheats are still caught eventually.
type Gate struct {
	cfg      GateConfig
	sessions *shardstore.Store[uint64]
}

// NewGate builds a gate over the shared ledger.
func NewGate(cfg GateConfig) *Gate {
	if cfg.Ledger == nil {
		cfg.Ledger = NewLedger(LedgerConfig{})
	}
	if cfg.EscalateThreshold == 0 {
		cfg.EscalateThreshold = DefaultEscalateThreshold
	}
	if cfg.AuditInterval == 0 {
		cfg.AuditInterval = DefaultAuditInterval
	}
	return &Gate{
		cfg:      cfg,
		sessions: shardstore.New[uint64](shardstore.Config[uint64]{Capacity: DefaultLedgerCapacity}),
	}
}

// Ledger returns the gate's ledger.
func (g *Gate) Ledger() *Ledger { return g.cfg.Ledger }

// ShouldReExecute reports whether the session just executed by host
// needs the full re-execution check. Suspicion at/above the threshold
// escalates every session; otherwise every AuditInterval-th session of
// the host is audited as a baseline.
func (g *Gate) ShouldReExecute(host string) bool {
	n := g.sessions.Upsert(host, func(old uint64, _ bool) uint64 { return old + 1 })
	if s := g.cfg.Ledger.Suspicion(host); s >= g.cfg.EscalateThreshold {
		if g.cfg.Bus != nil {
			g.cfg.Bus.Publish(events.Event{
				Kind:   events.KindLevelEscalation,
				Host:   host,
				Fields: map[string]string{"suspicion": fmt.Sprintf("%.3f", s)},
			})
		}
		return true
	}
	return g.cfg.AuditInterval > 0 && n%uint64(g.cfg.AuditInterval) == 0
}
