package policy

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/shardstore"
)

func openDurableLedger(t *testing.T, dir string, now func() time.Time) *Ledger {
	t.Helper()
	backend, err := shardstore.OpenWAL(dir, shardstore.WALConfig{FlushInterval: -1})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	l, err := OpenLedger(LedgerConfig{HalfLife: time.Hour, Now: now, Backend: backend})
	if err != nil {
		t.Fatalf("OpenLedger: %v", err)
	}
	return l
}

func TestLedgerSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }

	l := openDurableLedger(t, dir, clock)
	l.Observe("evil", false, 0)
	l.Observe("evil", false, 0)
	l.Observe("evil", true, 0)
	l.Observe("meh", false, 0.5)
	l.Merge("gossiped", 3.0, now)
	wantEvil := l.Suspicion("evil")
	wantRep, ok := l.Report("evil")
	if !ok || wantRep.Failures != 2 || wantRep.Events != 3 {
		t.Fatalf("pre-restart report = %+v (ok=%v)", wantRep, ok)
	}
	wantSnap := l.Snapshot(0)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Same frozen clock: the recovered suspicion must be bit-identical,
	// not merely close (the codec stores exact IEEE-754 bits).
	r := openDurableLedger(t, dir, clock)
	defer r.Close()
	if got := r.Suspicion("evil"); got != wantEvil {
		t.Fatalf("recovered suspicion = %v, want exactly %v", got, wantEvil)
	}
	rep, ok := r.Report("evil")
	if !ok || rep != wantRep {
		t.Fatalf("recovered report = %+v (ok=%v), want %+v", rep, ok, wantRep)
	}
	snap := r.Snapshot(0)
	if len(snap) != len(wantSnap) {
		t.Fatalf("recovered snapshot has %d hosts, want %d", len(snap), len(wantSnap))
	}
	for i := range wantSnap {
		if snap[i] != wantSnap[i] {
			t.Fatalf("recovered snapshot[%d] = %+v, want %+v", i, snap[i], wantSnap[i])
		}
	}
}

func TestLedgerDowntimeCountsAsCleanTime(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	now := time.Unix(1_000_000, 0)

	l := openDurableLedger(t, dir, func() time.Time { return now })
	l.Observe("evil", false, 4.0)
	before := l.Suspicion("evil")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen one half-life later: the recovered record decays from its
	// stored timestamp, so the downtime forgives like uptime would.
	later := now.Add(time.Hour)
	r := openDurableLedger(t, dir, func() time.Time { return later })
	defer r.Close()
	got := r.Suspicion("evil")
	if got >= before {
		t.Fatalf("suspicion did not decay across downtime: %v -> %v", before, got)
	}
	if diff := got - before/2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("one half-life of downtime: suspicion %v, want ~%v", got, before/2)
	}
}

func TestNewLedgerRefusesBackend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLedger accepted a Backend without panicking")
		}
	}()
	backend, err := shardstore.OpenWAL(t.TempDir(), shardstore.WALConfig{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	NewLedger(LedgerConfig{Backend: backend})
}
