package policy

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/host"
	"repro/internal/shardstore"
	"repro/internal/sigcrypto"
)

// GossipMechanismName is the baggage key and mechanism name of the
// reputation-gossip mechanism.
const GossipMechanismName = "reputation"

// Limits keeping gossip baggage bounded: a malicious host can pad its
// own entries but cannot grow the agent without the next honest host
// trimming the excess.
const (
	// maxGossipEntries bounds the entries carried in baggage.
	maxGossipEntries = 64
	// gossipShareLimit is how many of its own ledger extracts a host
	// shares per departure (the most suspect hosts first).
	gossipShareLimit = 16
	// minGossipSuspicion is the floor below which an extract is not
	// worth sharing.
	minGossipSuspicion = 0.1
)

// GossipEntry is one signed reputation observation: Observer vouches
// that Host had the given suspicion at time At.
type GossipEntry struct {
	Observer  string
	Host      string
	Suspicion float64
	// AtUnixNano is the observation time; receivers decay from it.
	AtUnixNano int64
	Sig        sigcrypto.Signature
}

// bindingDigest is what the entry signature covers.
func (e *GossipEntry) bindingDigest() canon.Digest {
	var bits [8]byte
	u := math.Float64bits(e.Suspicion)
	for i := 0; i < 8; i++ {
		bits[i] = byte(u >> (56 - 8*i))
	}
	var at [8]byte
	v := uint64(e.AtUnixNano)
	for i := 0; i < 8; i++ {
		at[i] = byte(v >> (56 - 8*i))
	}
	return canon.HashTuple(
		[]byte("policy-gossip"),
		[]byte(e.Observer),
		[]byte(e.Host),
		bits[:],
		at[:],
	)
}

// Gossip is a core.Mechanism that propagates ledger extracts in agent
// baggage: on departure the host signs its most-suspect ledger entries
// into the agent; on arrival it verifies and merges the entries other
// hosts attached. One node's detection thereby raises suspicion on
// every host the agent subsequently visits, without a separate protocol
// round — detection fused into a cross-event picture instead of dying
// as a point event.
//
// Gossip produces no verdicts: malformed or unverifiable entries are
// dropped silently (they are advisory second-hand evidence, and
// punishing the carrier would blame the wrong principal). Dropping is
// also what keeps the baggage honest: only entries that verified on
// arrival are re-carried on departure, so forged junk cannot crowd
// genuine extracts out of the maxGossipEntries cap — it dies at the
// first honest host.
type Gossip struct {
	core.BaseMechanism
	ledger *Ledger
	now    func() time.Time
	// verified holds, per agent currently on this host, the gossip
	// entries that passed arrival verification — the only ones
	// departure re-carries. Bounded: an agent that never departs
	// (quarantined) ages out FIFO.
	verified *shardstore.Store[[]GossipEntry]

	// exchange is the anti-entropy loop started through the node
	// lifecycle (core.Exchanger); nil when the node runs gossip-in-
	// baggage only. offersServed counts reputation/offer calls answered
	// regardless (a node serves peers even when it initiates no rounds
	// itself). urgentSent / urgentMerged count replies wrapped with
	// urgent extracts and urgent entries merged off replies. All
	// guarded by exMu.
	exMu         sync.Mutex
	exchange     *Exchange
	offersServed int64
	urgentSent   int64
	urgentMerged int64

	// Urgent-extract piggybacking (urgent.go): quarantine-level ledger
	// extracts ride on served protocol replies. urgentAt is the
	// threshold (0 disables — set via SetUrgentThreshold before the
	// node starts); the cache holds the encoded baggage for the ledger
	// version it was built at, guarded by urgMu.
	urgentAt    float64
	urgMu       sync.Mutex
	urgCacheVer uint64
	urgCacheSet bool
	urgCache    []byte

	// bus, when non-nil, receives gossip-merge, exchange-round, and
	// peer-cooldown events; set via SetBus before the node starts.
	bus *events.Bus

	// batchVerify selects sigcrypto.Registry.VerifyBatch for signature
	// checks in mergeVerified (one key resolution and one verification
	// pass per bundle instead of per entry). On by default; scale A/B
	// runs switch it off via SetBatchVerify to measure the delta. The
	// trust policy is identical either way — entries failing the batch
	// are dropped exactly as scalar failures are.
	batchVerify bool
}

var (
	_ core.Mechanism   = (*Gossip)(nil)
	_ core.CallHandler = (*Gossip)(nil)
	_ core.Exchanger   = (*Gossip)(nil)
)

// NewGossip builds the mechanism over the node's shared ledger.
func NewGossip(ledger *Ledger) *Gossip {
	if ledger == nil {
		ledger = NewLedger(LedgerConfig{})
	}
	return &Gossip{
		ledger:      ledger,
		now:         time.Now,
		verified:    shardstore.New[[]GossipEntry](shardstore.Config[[]GossipEntry]{Capacity: DefaultLedgerCapacity}),
		batchVerify: true,
	}
}

// SetBatchVerify toggles batched signature verification in the merge
// path. Call before the node starts, like SetClock.
func (m *Gossip) SetBatchVerify(on bool) { m.batchVerify = on }

// SetClock replaces the clock that stamps outgoing gossip extracts
// (entry AtUnixNano fields and exchange-round timestamps). Campaign
// harnesses running on virtual time call it once, right after
// construction and before the node starts any exchange loop — the
// loop captures the clock at start, so later calls do not reach an
// already-running exchange.
func (m *Gossip) SetClock(now func() time.Time) {
	if now != nil {
		m.now = now
	}
}

// SetBus attaches an event bus: merges of verified gossip/exchange
// extracts and the exchange loop's round/cooldown outcomes publish to
// it. Call before the node starts, like SetClock; nil is a no-op.
func (m *Gossip) SetBus(bus *events.Bus) {
	if bus != nil {
		m.bus = bus
	}
}

// Name implements core.Mechanism.
func (m *Gossip) Name() string { return GossipMechanismName }

// decodeEntries parses gossip baggage through the bounded tuple codec
// (see wire.go); a decode error — including an oversized or over-count
// message — reads as empty (the carrier may have been tampered with;
// wholesig, layered outside this mechanism, is what detects that).
func decodeEntries(data []byte) []GossipEntry {
	if len(data) == 0 {
		return nil
	}
	entries, err := decodeEntriesBounded(data, maxGossipEntries)
	if err != nil {
		return nil
	}
	return entries
}

// mergeVerified filters entries exactly as arrival does — dropping
// self-reports, entries echoing our own observations back, non-finite
// or non-positive suspicion, and anything whose signature does not
// verify against the claimed observer — and merges the survivors into
// the ledger. It returns the surviving entries (what baggage re-carry
// keeps) and is shared verbatim by the anti-entropy exchange, so both
// ingestion paths enforce one trust policy.
func (m *Gossip) mergeVerified(reg *sigcrypto.Registry, self string, entries []GossipEntry) []GossipEntry {
	// Structural filter first; survivors go to signature verification.
	var cand []GossipEntry
	for _, e := range entries {
		if e.Observer == e.Host || e.Observer == self {
			continue
		}
		if e.Suspicion <= 0 || math.IsNaN(e.Suspicion) || math.IsInf(e.Suspicion, 0) {
			continue
		}
		if e.Sig.Signer != e.Observer {
			continue
		}
		cand = append(cand, e)
	}
	// One batch verification for the whole bundle (one key resolution,
	// one pass) when enabled; entries whose slot fails are dropped —
	// the same outcome the scalar path produces per entry, because
	// VerifyBatch re-checks failures through the scalar Verify and so
	// preserves per-signer attribution. A nil errs slice means every
	// entry verified. The scalar loop below survives only as the
	// batchVerify=false arm the scale A/B measures against — every
	// bundle size, including the steady-state single-entry trickle the
	// exchange produces once a fleet converges, takes the batch path.
	batched := m.batchVerify && len(cand) > 0
	var errs []error
	if batched {
		batch := make([]sigcrypto.BatchEntry, len(cand))
		for i := range cand {
			batch[i] = sigcrypto.DigestEntry(cand[i].bindingDigest(), cand[i].Sig)
		}
		errs = reg.VerifyBatch(batch)
	}
	var keep []GossipEntry
	for i, e := range cand {
		if batched {
			if errs != nil && errs[i] != nil {
				continue
			}
		} else if err := reg.VerifyDigest(e.bindingDigest(), e.Sig); err != nil {
			continue
		}
		m.ledger.Merge(e.Host, e.Suspicion, time.Unix(0, e.AtUnixNano))
		keep = append(keep, e)
	}
	if m.bus != nil && len(keep) > 0 {
		m.bus.Publish(events.Event{
			Kind:   events.KindGossipMerge,
			Fields: map[string]string{"entries": strconv.Itoa(len(keep))},
		})
	}
	return keep
}

// extracts selects up to limit signed extracts from snap — a ledger
// snapshot, most suspect first — skipping the host itself, entries
// below the sharing floor, and any host in the skip set. Both the
// departure path and the exchange protocol share it: one extract
// format, one signer (callers that need the snapshot for other work
// too, like the exchange's summary, take it once and pass it in).
// Selection also stops at the wire byte budget, so the returned list
// always encodes within MaxGossipWireBytes — a fleet with many long
// principal names trades fewer extracts per message, never a failing
// one (the most suspect hosts still go first; the rest wait for the
// next departure or round).
func (m *Gossip) extracts(snap []core.HostReputation, self string, keys *sigcrypto.KeyPair, limit int, skip func(rep core.HostReputation) bool) []GossipEntry {
	if len(self) > maxPrincipalLen {
		// A node whose own name cannot travel in an entry has nothing
		// it can share.
		return nil
	}
	now := m.now().UnixNano()
	var out []GossipEntry
	size := entriesWireHeader
	for _, rep := range snap {
		if len(out) >= limit {
			break
		}
		if rep.Suspicion < minGossipSuspicion || rep.Host == self {
			continue
		}
		if len(rep.Host) > maxPrincipalLen {
			// An over-bound principal name cannot go on the wire; skip
			// it rather than fail the whole message (the codec's
			// invariant: a host never emits what peers must reject).
			continue
		}
		if skip != nil && skip(rep) {
			continue
		}
		e := GossipEntry{Observer: self, Host: rep.Host, Suspicion: rep.Suspicion, AtUnixNano: now}
		e.Sig = keys.SignDigest(e.bindingDigest())
		if size+entryWireSize(&e) > MaxGossipWireBytes {
			break
		}
		size += entryWireSize(&e)
		out = append(out, e)
	}
	return out
}

// CheckAfterSession merges verified gossip entries into the local
// ledger and records them for re-carry on departure. Self-reports (an
// observer vouching about itself), entries from unknown observers, and
// non-finite suspicion values are dropped.
func (m *Gossip) CheckAfterSession(_ context.Context, hc *core.HostContext, ag *agent.Agent) (*core.Verdict, error) {
	data, ok := ag.GetBaggage(GossipMechanismName)
	if !ok {
		return nil, nil
	}
	keep := m.mergeVerified(hc.Host.Registry(), hc.Host.Name(), decodeEntries(data))
	m.verified.Put(ag.ID, keep)
	return nil, nil
}

// PrepareDeparture refreshes the agent's gossip baggage: this host's
// own most-suspect ledger extracts (signed) joined with the travelling
// entries that verified on arrival, newest per (observer, host),
// capped at maxGossipEntries by descending suspicion.
func (m *Gossip) PrepareDeparture(_ context.Context, hc *core.HostContext, ag *agent.Agent, _ *host.SessionRecord) error {
	keep := make(map[string]GossipEntry)
	arrived, _ := m.verified.Get(ag.ID)
	m.verified.Delete(ag.ID)
	for _, e := range arrived {
		k := e.Observer + "\x00" + e.Host
		if prev, dup := keep[k]; !dup || e.AtUnixNano > prev.AtUnixNano {
			keep[k] = e
		}
	}
	self := hc.Host.Name()
	for _, e := range m.extracts(m.ledger.Snapshot(0), self, hc.Host.Keys(), gossipShareLimit, nil) {
		keep[e.Observer+"\x00"+e.Host] = e
	}
	if len(keep) == 0 {
		// Nothing worth carrying: strip any baggage that failed
		// verification rather than ferrying it onward.
		ag.ClearBaggage(GossipMechanismName)
		return nil
	}
	entries := make([]GossipEntry, 0, len(keep))
	for _, e := range keep {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Suspicion != entries[j].Suspicion {
			return entries[i].Suspicion > entries[j].Suspicion
		}
		if entries[i].Host != entries[j].Host {
			return entries[i].Host < entries[j].Host
		}
		return entries[i].Observer < entries[j].Observer
	})
	if len(entries) > maxGossipEntries {
		entries = entries[:maxGossipEntries]
	}
	enc, err := encodeEntries(entries)
	if err != nil {
		return fmt.Errorf("policy: encoding gossip: %w", err)
	}
	ag.SetBaggage(GossipMechanismName, enc)
	return nil
}
