package policy

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sigcrypto"
)

// mkEntries builds n syntactically valid (unsigned) entries.
func mkEntries(n int) []GossipEntry {
	out := make([]GossipEntry, n)
	for i := range out {
		out[i] = GossipEntry{
			Observer:   "observer",
			Host:       "suspect",
			Suspicion:  1.5,
			AtUnixNano: time.Now().UnixNano(),
			Sig:        sigcrypto.Signature{Signer: "observer", Sig: make([]byte, 64)},
		}
	}
	return out
}

// TestGossipWireRoundTrip pins that the tuple codec reproduces entries
// exactly.
func TestGossipWireRoundTrip(t *testing.T) {
	in := mkEntries(3)
	in[1].Suspicion = 0.25
	in[2].Host = "other"
	enc, err := encodeEntries(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeEntriesBounded(enc, maxGossipEntries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Observer != in[i].Observer || out[i].Host != in[i].Host ||
			out[i].Suspicion != in[i].Suspicion || out[i].AtUnixNano != in[i].AtUnixNano ||
			out[i].Sig.Signer != in[i].Sig.Signer || len(out[i].Sig.Sig) != len(in[i].Sig.Sig) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

// TestGossipWireBounds is the regression test for the unbounded-decode
// bug: oversized messages, over-count messages, and huge declared
// counts are all rejected by the bounded decoder — no proportional
// allocation happens for bytes that were never sent.
func TestGossipWireBounds(t *testing.T) {
	// Over the byte bound: rejected before parsing.
	big := make([]byte, MaxGossipWireBytes+1)
	if _, err := decodeEntriesBounded(big, maxGossipEntries); !errors.Is(err, ErrGossipWire) {
		t.Fatalf("oversized message: err = %v, want ErrGossipWire", err)
	}
	// Baggage wrapper treats it as empty rather than erroring.
	if got := decodeEntries(big); got != nil {
		t.Fatalf("baggage wrapper returned %d entries for oversized input", len(got))
	}

	// Over the entry-count bound.
	enc, err := encodeEntries(mkEntries(maxGossipEntries + 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeEntriesBounded(enc, maxGossipEntries); !errors.Is(err, ErrGossipWire) {
		t.Fatalf("over-count message: err = %v, want ErrGossipWire", err)
	}

	// A tiny message declaring an enormous tuple count: the framed
	// format runs out of bytes immediately instead of allocating for
	// the declared count.
	forged := []byte{0x01, 0x09} // canon version + tuple tag
	forged = binary.BigEndian.AppendUint32(forged, 1<<25)
	if _, err := decodeEntriesBounded(forged, maxGossipEntries); err == nil {
		t.Fatal("huge declared count accepted")
	}

	// Per-field bounds hold on both sides of the wire.
	overlong := mkEntries(1)
	overlong[0].Observer = string(make([]byte, maxPrincipalLen+1))
	if _, err := encodeEntries(overlong); !errors.Is(err, ErrGossipWire) {
		t.Fatalf("overlong principal encoded: err = %v", err)
	}
}

// TestExchangeWireBounds covers the offer/delta framing: byte bound,
// budget clamping, and malformed-label rejection.
func TestExchangeWireBounds(t *testing.T) {
	if _, err := decodeDelta(make([]byte, MaxExchangeWireBytes+1)); !errors.Is(err, ErrExchangeWire) {
		t.Fatalf("oversized delta: err = %v, want ErrExchangeWire", err)
	}
	if _, _, _, _, err := decodeOffer(make([]byte, MaxExchangeWireBytes+1)); !errors.Is(err, ErrExchangeWire) {
		t.Fatalf("oversized offer: err = %v, want ErrExchangeWire", err)
	}

	body, err := encodeOffer("init", 1<<40, []summaryItem{{Host: "h", Suspicion: 2}}, mkEntries(1))
	if err != nil {
		t.Fatal(err)
	}
	initiator, budget, summary, entries, err := decodeOffer(body)
	if err != nil {
		t.Fatal(err)
	}
	if initiator != "init" {
		t.Fatalf("initiator = %q, want %q", initiator, "init")
	}
	if budget != core.MaxExchangeBudget {
		t.Fatalf("budget = %d, want clamped to %d", budget, core.MaxExchangeBudget)
	}
	if summary["h"] != 2 || len(entries) != 1 {
		t.Fatalf("offer round trip: summary %v, %d entries", summary, len(entries))
	}

	// A delta is not an offer and vice versa.
	delta, err := encodeDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := decodeOffer(delta); !errors.Is(err, ErrExchangeWire) {
		t.Fatalf("delta accepted as offer: %v", err)
	}
	if _, err := decodeDelta(body); !errors.Is(err, ErrExchangeWire) {
		t.Fatalf("offer accepted as delta: %v", err)
	}
}
