package policy

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/sigcrypto"
	"repro/internal/transport"
)

// gossipEndpoint adapts one host's gossip mechanism to the transport
// endpoint shape, standing in for a full core.Node: the exchange only
// needs the "reputation/offer" dispatch.
type gossipEndpoint struct {
	hc *core.HostContext
	g  *Gossip
}

func (e gossipEndpoint) HandleAgent(context.Context, []byte) error { return nil }

func (e gossipEndpoint) HandleCall(ctx context.Context, method string, body []byte) ([]byte, error) {
	name, rest, ok := strings.Cut(method, "/")
	if !ok || name != GossipMechanismName {
		return nil, transport.ErrUnknownMethod
	}
	return e.g.HandleCall(ctx, e.hc, rest, body)
}

// exNode is one fleet member of an exchange test bed.
type exNode struct {
	name string
	hc   *core.HostContext
	g    *Gossip
	led  *Ledger
	x    *Exchange
	stop func()
}

// exBed is a fleet of gossip mechanisms wired over InProc with frozen
// clocks, so merge results are exactly reproducible.
type exBed struct {
	nodes []*exNode
	net   *transport.InProc
}

func exName(i int) string { return fmt.Sprintf("n%d", i) }

// newExBed builds n nodes; peers[i] is node i's exchange peer list.
// Nodes with a nil peer list get no exchange loop (responder-only).
func newExBed(t *testing.T, n int, peers [][]string, register func(i int) bool) *exBed {
	t.Helper()
	return newExBedCfg(t, n, func(i int) *core.ExchangeConfig {
		if peers[i] == nil {
			return nil
		}
		return &core.ExchangeConfig{Peers: peers[i]}
	}, register)
}

// newExBedCfg is newExBed with a full per-node exchange configuration
// (roles, aggregator lists); nil means no exchange loop. The interval
// is parked regardless — rounds are driven manually via Step.
func newExBedCfg(t *testing.T, n int, cfgFor func(i int) *core.ExchangeConfig, register func(i int) bool) *exBed {
	t.Helper()
	reg := sigcrypto.NewRegistry()
	net := transport.NewInProc()
	fixed := time.Now()
	now := func() time.Time { return fixed }
	bed := &exBed{net: net}
	for i := 0; i < n; i++ {
		name := exName(i)
		keys, err := sigcrypto.GenerateKeyPair(name)
		if err != nil {
			t.Fatal(err)
		}
		h, err := host.New(host.Config{Name: name, Keys: keys, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		led := NewLedger(LedgerConfig{HalfLife: time.Hour, Now: now})
		g := NewGossip(led)
		g.now = now
		node := &exNode{
			name: name,
			hc:   &core.HostContext{Host: h, Net: net},
			g:    g,
			led:  led,
		}
		if register == nil || register(i) {
			net.Register(name, gossipEndpoint{hc: node.hc, g: g})
		}
		bed.nodes = append(bed.nodes, node)
	}
	for i, node := range bed.nodes {
		cfg := cfgFor(i)
		if cfg == nil {
			continue
		}
		cfg.Interval = time.Hour
		stop, err := node.g.StartExchange(context.Background(), node.hc, *cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.x = node.g.Exchange()
		node.stop = stop
		t.Cleanup(stop)
	}
	return bed
}

// stepAll runs one exchange round on every looped node.
func (b *exBed) stepAll(ctx context.Context) {
	for _, n := range b.nodes {
		if n.x != nil {
			_ = n.x.Step(ctx)
		}
	}
}

// TestExchangeConvergenceRandomTopologies: on random connected
// topologies, a single node's first-hand detection reaches every node
// in the fleet within a bounded number of rounds, with zero agent
// traffic involved.
func TestExchangeConvergenceRandomTopologies(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 4 + rng.Intn(7) // 4..10 nodes
		peers := make([][]string, n)
		for i := 0; i < n; i++ {
			peers[i] = []string{exName((i + 1) % n)} // ring keeps it connected
			for j := 0; j < n; j++ {
				if j != i && rng.Intn(3) == 0 {
					peers[i] = append(peers[i], exName(j))
				}
			}
		}
		bed := newExBed(t, n, peers, nil)
		bed.nodes[0].led.Observe("mallory", false, maxMergeSuspicion)

		maxRounds := 4 * n
		rounds := 0
		converged := func() bool {
			for _, node := range bed.nodes {
				if node.led.Suspicion("mallory") < DefaultEscalateThreshold {
					return false
				}
			}
			return true
		}
		for ; rounds < maxRounds && !converged(); rounds++ {
			bed.stepAll(ctx)
		}
		if !converged() {
			for _, node := range bed.nodes {
				t.Logf("trial %d: %s suspicion %.3f", trial, node.name, node.led.Suspicion("mallory"))
			}
			t.Fatalf("trial %d: fleet of %d did not converge within %d rounds", trial, n, maxRounds)
		}
		t.Logf("trial %d: fleet of %d converged in %d rounds", trial, n, rounds)
	}
}

// TestExchangeOfferIdempotent: replaying or duplicating an offer — the
// adversary's cheapest move against an anti-entropy protocol — changes
// nothing: merge is a decayed max, so the second application is a
// no-op.
func TestExchangeOfferIdempotent(t *testing.T) {
	ctx := context.Background()
	bed := newExBed(t, 2, [][]string{{exName(1)}, {exName(0)}}, nil)
	a, b := bed.nodes[0], bed.nodes[1]
	a.led.Observe("mallory", false, 0)

	// First round: B learns via A's push; A pulls nothing new.
	if err := a.x.Step(ctx); err != nil {
		t.Fatal(err)
	}
	want := b.led.Suspicion("mallory")
	if want <= 0 {
		t.Fatal("push half did not reach B")
	}

	// Build the identical offer by hand and replay it straight into B's
	// handler twice more.
	push := a.g.extracts(a.led.Snapshot(0), a.name, a.hc.Host.Keys(), 16, nil)
	body, err := encodeOffer(a.name, 16, nil, push)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.g.HandleCall(ctx, b.hc, "offer", body); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.led.Suspicion("mallory"); got != want {
		t.Fatalf("replayed offer changed B's ledger: %v -> %v", want, got)
	}

	// Duplicate full rounds are idempotent too, in both directions.
	aView := a.led.Suspicion("mallory")
	for i := 0; i < 3; i++ {
		if err := a.x.Step(ctx); err != nil {
			t.Fatal(err)
		}
		if err := b.x.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.led.Suspicion("mallory"); got != want {
		t.Fatalf("duplicated rounds changed B's ledger: %v -> %v", want, got)
	}
	if got := a.led.Suspicion("mallory"); got != aView {
		t.Fatalf("duplicated rounds changed A's first-hand view: %v -> %v", aView, got)
	}
}

// TestExchangePartitionedNodeCatchesUp: a node partitioned away (down,
// unreachable — the exchanges the rest of the fleet attempts against
// it fail and are counted) learns nothing while the others converge,
// and pulls the whole picture within one tour of its peer ring after
// the heal.
func TestExchangePartitionedNodeCatchesUp(t *testing.T) {
	ctx := context.Background()
	const n = 4
	peers := make([][]string, n)
	for i := 0; i < n-1; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				peers[i] = append(peers[i], exName(j))
			}
		}
	}
	// Node 3 starts partitioned: unregistered, no loop of its own yet.
	bed := newExBed(t, n, peers, func(i int) bool { return i != 3 })
	part := bed.nodes[3]
	bed.nodes[0].led.Observe("mallory", false, maxMergeSuspicion)

	for r := 0; r < 3*n; r++ {
		bed.stepAll(ctx)
	}
	for _, node := range bed.nodes[:3] {
		if node.led.Suspicion("mallory") < DefaultEscalateThreshold {
			t.Fatalf("connected fleet did not converge at %s", node.name)
		}
		// Rounds that drew the partitioned peer failed and were counted.
		if st := node.x.Stats(); st.Failures == 0 {
			t.Fatalf("%s saw no failed rounds against the partitioned peer: %+v", node.name, st)
		}
	}
	if got := part.led.Suspicion("mallory"); got != 0 {
		t.Fatalf("partitioned node learned suspicion %v while unreachable", got)
	}

	// Heal: the node comes back and starts exchanging; its own pulls
	// catch it up within one tour of its peer ring.
	bed.net.Register(part.name, gossipEndpoint{hc: part.hc, g: part.g})
	stop, err := part.g.StartExchange(ctx, part.hc, core.ExchangeConfig{
		Peers:    []string{exName(0), exName(1), exName(2)},
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	part.x = part.g.Exchange()
	for r := 0; r < n && part.led.Suspicion("mallory") < DefaultEscalateThreshold; r++ {
		_ = part.x.Step(ctx)
	}
	if got := part.led.Suspicion("mallory"); got < DefaultEscalateThreshold {
		t.Fatalf("healed node did not catch up: suspicion %v", got)
	}
}

// TestExchangeByteBudgetWithLongNames: a fleet whose ledger tracks
// many hosts with long principal names at the maximum entry budget
// must still produce encodable offers and deltas — extract and summary
// selection stop at the wire byte budget instead of failing the round.
func TestExchangeByteBudgetWithLongNames(t *testing.T) {
	ctx := context.Background()
	bed := newExBed(t, 2, [][]string{{exName(1)}, nil}, nil)
	a, b := bed.nodes[0], bed.nodes[1]
	longName := func(i int) string {
		return fmt.Sprintf("%0200d-suspect", i) // 208-byte names, under maxPrincipalLen
	}
	for i := 0; i < 400; i++ {
		a.led.Observe(longName(i), false, 2)
	}
	// A principal name over the wire bound cannot be encoded at all:
	// selection must skip it instead of failing every departure and
	// round it would ride in.
	unencodable := string(make([]byte, maxPrincipalLen+1))
	a.led.Observe(unencodable, false, 9)

	push := a.g.extracts(a.led.Snapshot(0), a.name, a.hc.Host.Keys(), core.MaxExchangeBudget, nil)
	if len(push) == 0 {
		t.Fatal("no extracts selected")
	}
	for _, e := range push {
		if e.Host == unencodable {
			t.Fatal("over-bound principal name selected for the wire")
		}
	}
	enc, err := encodeEntries(push)
	if err != nil {
		t.Fatalf("byte-budgeted extracts do not encode: %v", err)
	}
	if len(enc) > MaxGossipWireBytes {
		t.Fatalf("encoded extracts %d bytes over %d", len(enc), MaxGossipWireBytes)
	}

	// The whole round survives end to end, and the responder learns the
	// most suspect hosts first.
	if err := a.x.Step(ctx); err != nil {
		t.Fatalf("max-budget round with long names failed: %v", err)
	}
	if st, _ := a.g.ExchangeStats(); st.Failures != 0 || st.EntriesSent == 0 {
		t.Fatalf("round stats = %+v", st)
	}
	if got := b.led.Suspicion(longName(0)); got <= 0 {
		t.Fatal("responder learned nothing from the budgeted push")
	}
}

// TestExchangeStatsAndReputationReporting pins the stats surface: the
// client loop counts rounds/entries, the responder counts offers
// served, and both flow through Gossip.ExchangeStats.
func TestExchangeStatsAndReputationReporting(t *testing.T) {
	ctx := context.Background()
	bed := newExBed(t, 2, [][]string{{exName(1)}, nil}, nil)
	a, b := bed.nodes[0], bed.nodes[1]
	a.led.Observe("mallory", false, 0)

	if err := a.x.Step(ctx); err != nil {
		t.Fatal(err)
	}
	st, enabled := a.g.ExchangeStats()
	if !enabled {
		t.Fatal("exchange loop not reported enabled on the initiator")
	}
	if st.Rounds != 1 || st.Failures != 0 || st.EntriesSent != 1 || st.LastPeer != b.name {
		t.Fatalf("initiator stats = %+v", st)
	}
	bst, benabled := b.g.ExchangeStats()
	if benabled {
		t.Fatal("responder-only node reported an exchange loop")
	}
	if bst.OffersServed != 1 {
		t.Fatalf("responder stats = %+v", bst)
	}

	// Double-start is refused: one loop per mechanism instance.
	if _, err := a.g.StartExchange(ctx, a.hc, core.ExchangeConfig{Peers: []string{b.name}}); err == nil {
		t.Fatal("second StartExchange on one mechanism succeeded")
	}
	// Close is how protection.Stack tears the loop down; idempotent
	// with the node-side stop.
	if err := a.g.Close(); err != nil {
		t.Fatal(err)
	}
	a.stop()
}
