package policy

import (
	"context"
	"testing"

	"repro/internal/transport"
)

// TestUrgentBaggageProviderThresholdAndCap pins the provider half of
// urgent piggybacking: only entries at or above the urgent threshold
// ride, at most maxUrgentEntries of them, most suspect first, and the
// encoded form is rebuilt only when the ledger version moves.
func TestUrgentBaggageProviderThresholdAndCap(t *testing.T) {
	bed := newExBed(t, 2, [][]string{nil, nil}, nil)
	b := bed.nodes[1]
	b.g.SetUrgentThreshold(2.0)

	// Nothing urgent yet: below-threshold entries produce no baggage.
	b.led.Observe("mild", false, 1.0)
	if bg := b.g.UrgentReplyBaggage(b.hc); bg != nil {
		t.Fatalf("below-threshold ledger produced baggage (%d bytes)", len(bg))
	}

	// Over the cap: 12 quarantine-level hosts, only maxUrgentEntries
	// ride, and they are the most suspect ones.
	for i := 0; i < 12; i++ {
		b.led.Observe(exName(100+i), false, 3.0+float64(i))
	}
	bg := b.g.UrgentReplyBaggage(b.hc)
	if bg == nil {
		t.Fatal("quarantine-level ledger produced no baggage")
	}
	entries, err := decodeEntriesBounded(bg, maxGossipEntries)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != maxUrgentEntries {
		t.Fatalf("baggage carries %d entries, want cap %d", len(entries), maxUrgentEntries)
	}
	for _, e := range entries {
		if e.Suspicion < 2.0 {
			t.Fatalf("below-threshold entry %q (%.2f) rode urgent baggage", e.Host, e.Suspicion)
		}
	}
	// The worst offender is always aboard.
	found := false
	for _, e := range entries {
		if e.Host == exName(111) {
			found = true
		}
	}
	if !found {
		t.Fatal("most-suspect host missing from urgent baggage")
	}

	// Same ledger version ⇒ the cached encoding is returned as-is.
	if again := b.g.UrgentReplyBaggage(b.hc); &again[0] != &bg[0] {
		t.Fatal("unchanged ledger version rebuilt the urgent baggage")
	}
	// A raising observation bumps the version and invalidates the cache.
	b.led.Observe("fresh-cheat", false, 7.5)
	entries, err = decodeEntriesBounded(b.g.UrgentReplyBaggage(b.hc), maxGossipEntries)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, e := range entries {
		if e.Host == "fresh-cheat" {
			found = true
		}
	}
	if !found {
		t.Fatal("fresh detection did not reach the rebuilt urgent baggage")
	}
}

// TestUrgentBaggageMergeIdempotentReplay pins the merger half: urgent
// baggage lands through the shared verify-then-Merge (damping applies),
// and replaying the same baggage any number of times changes nothing —
// the decayed-max merge makes the urgent fast path replay-proof.
func TestUrgentBaggageMergeIdempotentReplay(t *testing.T) {
	bed := newExBed(t, 2, [][]string{nil, nil}, nil)
	a, b := bed.nodes[0], bed.nodes[1]
	b.g.SetUrgentThreshold(2.0)
	b.led.Observe("mallory", false, 3.0)

	bg := b.g.UrgentReplyBaggage(b.hc)
	if bg == nil {
		t.Fatal("no urgent baggage for a quarantine-level entry")
	}
	if got := a.g.MergeUrgentBaggage(a.hc, bg); got != 1 {
		t.Fatalf("merged %d entries, want 1", got)
	}
	want := a.led.Suspicion("mallory")
	// Damped second-hand evidence: 3.0 × gossipDamping.
	if want <= 2.6 || want > 3.0 {
		t.Fatalf("merged suspicion %.3f, want damped ~%.3f", want, 3.0*gossipDamping)
	}
	for i := 0; i < 3; i++ {
		a.g.MergeUrgentBaggage(a.hc, bg)
	}
	if got := a.led.Suspicion("mallory"); got != want {
		t.Fatalf("replayed urgent baggage moved the ledger: %v -> %v", want, got)
	}

	// Malformed baggage merges nothing and never errors the carrier.
	if got := a.g.MergeUrgentBaggage(a.hc, []byte("garbage")); got != 0 {
		t.Fatalf("garbage baggage merged %d entries", got)
	}
	st, _ := a.g.ExchangeStats()
	if st.UrgentMerged < 1 {
		t.Fatalf("urgent merge counter = %d, want >= 1", st.UrgentMerged)
	}
	bst, _ := b.g.ExchangeStats()
	if bst.UrgentSent < 1 {
		t.Fatalf("urgent sent counter = %d, want >= 1", bst.UrgentSent)
	}
}

// TestUrgentBaggageAttribution pins per-signer attribution through the
// batch verify path: a forged entry travelling with valid ones is
// dropped alone, batched and scalar verdicts identical — the exchange's
// offer/delta bundles ride the same mergeVerified, so this holds the
// line for all three ingestion paths.
func TestUrgentBaggageAttribution(t *testing.T) {
	for _, batched := range []bool{true, false} {
		bed := newExBed(t, 2, [][]string{nil, nil}, nil)
		a, b := bed.nodes[0], bed.nodes[1]
		a.g.SetBatchVerify(batched)
		b.g.SetUrgentThreshold(2.0)
		b.led.Observe("honest-victim", false, 4.0)
		b.led.Observe("real-cheat", false, 5.0)

		entries, err := decodeEntriesBounded(b.g.UrgentReplyBaggage(b.hc), maxGossipEntries)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 {
			t.Fatalf("want 2 entries, got %d", len(entries))
		}
		// Tamper one entry after signing: its signature no longer binds.
		for i := range entries {
			if entries[i].Host == "honest-victim" {
				entries[i].Suspicion = maxMergeSuspicion
			}
		}
		forged, err := encodeEntries(entries)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.g.MergeUrgentBaggage(a.hc, forged); got != 1 {
			t.Fatalf("batched=%v: merged %d entries, want only the intact one", batched, got)
		}
		if got := a.led.Suspicion("honest-victim"); got != 0 {
			t.Fatalf("batched=%v: forged entry merged (suspicion %.3f)", batched, got)
		}
		if got := a.led.Suspicion("real-cheat"); got <= 0 {
			t.Fatalf("batched=%v: intact entry dropped with the forged one", batched)
		}
	}
}

// TestExchangeRoundCarriesUrgentBaggage pins the one-RPC exposure
// property at the protocol layer: when a responder wraps its replies
// with urgent baggage (as core.Node does for every mechanism call), an
// exchange initiator merges the detection off the very reply that
// carried its round — no second RPC, no waiting for its own pull to
// select that entry.
func TestExchangeRoundCarriesUrgentBaggage(t *testing.T) {
	ctx := context.Background()
	bed := newExBed(t, 2, [][]string{{exName(1)}, nil}, func(i int) bool { return i == 0 })
	a, b := bed.nodes[0], bed.nodes[1]
	b.g.SetUrgentThreshold(2.0)
	b.led.Observe("urgent-cheat", false, 6.0)
	// A already knows the host at least as well as damping could raise
	// it, so B's delta is empty — anything that arrives came in the
	// urgent envelope, not the pull.
	a.led.Observe("urgent-cheat", false, 7.0)

	// Register B behind a wrapper that mimics the node's reply path:
	// every served call gets the urgent envelope.
	bed.net.Register(b.name, urgentWrapEndpoint{gossipEndpoint{hc: b.hc, g: b.g}})

	if err := a.x.Step(ctx); err != nil {
		t.Fatal(err)
	}
	st, _ := a.g.ExchangeStats()
	if st.EntriesReceived != 0 {
		t.Fatalf("delta carried %d entries; the test no longer isolates the envelope", st.EntriesReceived)
	}
	if st.UrgentMerged == 0 {
		t.Fatalf("initiator merged no urgent entries off the reply envelope: %+v", st)
	}
}

// urgentWrapEndpoint wraps every successful reply with the mechanism's
// urgent baggage — the shape core.Node gives mechanism-namespace calls.
type urgentWrapEndpoint struct {
	gossipEndpoint
}

func (e urgentWrapEndpoint) HandleCall(ctx context.Context, method string, body []byte) ([]byte, error) {
	reply, err := e.gossipEndpoint.HandleCall(ctx, method, body)
	if err != nil {
		return reply, err
	}
	if bg := e.g.UrgentReplyBaggage(e.hc); len(bg) > 0 {
		reply = transport.WrapReply(reply, bg)
	}
	return reply, nil
}
