package policy

import (
	"context"
	"testing"
)

// TestExchangeCooldownSingleDeadPeer pins the backoff cadence against
// one unreachable peer: probes land on rounds 1, 3, 6, 11, ... (skip
// 1, 2, 4, ... turns between), no-op steps count no round, and the
// skip cap bounds how long a recovered peer waits for its next probe.
func TestExchangeCooldownSingleDeadPeer(t *testing.T) {
	ctx := context.Background()
	// n1 exists but is never registered: every call to it fails.
	bed := newExBed(t, 2, [][]string{{exName(1)}, nil}, func(i int) bool { return i == 0 })
	x := bed.nodes[0].x

	type expect struct{ rounds, failures, skipped int64 }
	// step: probe, skip, probe, skip, skip, probe
	wants := []expect{
		{1, 1, 0},
		{1, 1, 1},
		{2, 2, 1},
		{2, 2, 2},
		{2, 2, 3},
		{3, 3, 3},
	}
	for i, w := range wants {
		_ = x.Step(ctx)
		st := x.Stats()
		if st.Rounds != w.rounds || st.Failures != w.failures || st.PeersSkipped != w.skipped {
			t.Fatalf("after step %d: rounds=%d failures=%d skipped=%d, want %+v",
				i+1, st.Rounds, st.Failures, st.PeersSkipped, w)
		}
	}

	// Exhaust the backoff growth: after enough failures the skip count
	// pins at maxPeerCooldownRounds instead of growing forever.
	for i := 0; i < 200; i++ {
		_ = x.Step(ctx)
	}
	x.mu.Lock()
	c := x.cool[exName(1)]
	skip, fails := c.skip, c.fails
	x.mu.Unlock()
	if skip > maxPeerCooldownRounds {
		t.Fatalf("skip %d exceeds cap %d", skip, maxPeerCooldownRounds)
	}
	if fails <= 5 {
		t.Fatalf("expected many failures by now, got %d", fails)
	}

	// The peer comes back: the next probe succeeds and clears the
	// backoff entirely — every following turn probes again.
	node1 := bed.nodes[1]
	bed.net.Register(node1.name, gossipEndpoint{hc: node1.hc, g: node1.g})
	for i := 0; i <= maxPeerCooldownRounds; i++ {
		_ = x.Step(ctx)
	}
	x.mu.Lock()
	_, cooling := x.cool[exName(1)]
	x.mu.Unlock()
	if cooling {
		t.Fatal("successful round did not clear the peer's cooldown")
	}
	before := x.Stats()
	if err := x.Step(ctx); err != nil {
		t.Fatalf("post-recovery step: %v", err)
	}
	after := x.Stats()
	if after.Rounds != before.Rounds+1 || after.PeersSkipped != before.PeersSkipped {
		t.Fatalf("recovered peer still skipped: before=%+v after=%+v", before, after)
	}
}

// TestExchangeCooldownShieldsHealthyPeers pins that a dead peer's
// backoff does not starve rounds against healthy ones: with one dead
// and one live peer, far fewer than half the rounds fail.
func TestExchangeCooldownShieldsHealthyPeers(t *testing.T) {
	ctx := context.Background()
	// Peers n1 (live) and n2 (never registered).
	bed := newExBed(t, 3, [][]string{{exName(1), exName(2)}, nil, nil}, func(i int) bool { return i != 2 })
	x := bed.nodes[0].x
	for i := 0; i < 64; i++ {
		_ = x.Step(ctx)
	}
	st := x.Stats()
	if st.Rounds == 0 {
		t.Fatal("no rounds ran")
	}
	// Without backoff the dead peer owns every other ring turn: ~32
	// failures. With exponential skips only ~log2 probes reach it.
	if st.Failures > 10 {
		t.Fatalf("dead peer consumed %d/%d rounds despite backoff", st.Failures, st.Rounds)
	}
	if st.PeersSkipped == 0 {
		t.Fatal("no ring turns were skipped")
	}
}

// TestExchangeUpdatePeers pins the live membership swap: cooldown
// state survives for retained peers, is pruned for removed ones, and
// a list that normalizes to empty is refused without touching the
// ring.
func TestExchangeUpdatePeers(t *testing.T) {
	ctx := context.Background()
	bed := newExBed(t, 3, [][]string{{exName(1), exName(2)}, nil, nil}, func(i int) bool { return i != 2 })
	x := bed.nodes[0].x
	for i := 0; i < 8; i++ {
		_ = x.Step(ctx)
	}
	x.mu.Lock()
	_, hadCool := x.cool[exName(2)]
	x.mu.Unlock()
	if !hadCool {
		t.Fatal("dead peer accumulated no cooldown")
	}

	// Retained dead peer keeps its backoff through a membership change.
	if err := x.UpdatePeers([]string{exName(1), exName(2)}); err != nil {
		t.Fatalf("UpdatePeers: %v", err)
	}
	x.mu.Lock()
	_, stillCool := x.cool[exName(2)]
	x.mu.Unlock()
	if !stillCool {
		t.Fatal("membership change reset a retained peer's cooldown")
	}

	// Removing the peer prunes its state; adding it back starts fresh.
	if err := x.UpdatePeers([]string{exName(1)}); err != nil {
		t.Fatalf("UpdatePeers shrink: %v", err)
	}
	x.mu.Lock()
	_, pruned := x.cool[exName(2)]
	peersNow := len(x.peers)
	x.mu.Unlock()
	if pruned || peersNow != 1 {
		t.Fatalf("removed peer not pruned (cool kept: %v, ring len %d)", pruned, peersNow)
	}

	// Empty (or self-only) lists are refused and leave the ring alone.
	if err := x.UpdatePeers(nil); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if err := x.UpdatePeers([]string{exName(0), ""}); err == nil {
		t.Fatal("self-only peer list accepted")
	}
	x.mu.Lock()
	peersNow = len(x.peers)
	x.mu.Unlock()
	if peersNow != 1 {
		t.Fatalf("failed update mutated the ring (len %d)", peersNow)
	}

	// The Gossip-level entry point reaches the same loop.
	if err := bed.nodes[0].g.UpdateExchangePeers([]string{exName(1), exName(2)}); err != nil {
		t.Fatalf("Gossip.UpdateExchangePeers: %v", err)
	}
	// A responder-only mechanism (no loop) refuses.
	if err := bed.nodes[1].g.UpdateExchangePeers([]string{exName(0)}); err == nil {
		t.Fatal("UpdateExchangePeers on a loopless mechanism succeeded")
	}
}
