package policy

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// TestExchangeFailurePenaltyShieldsHealthyPeers pins the scheduler's
// failure handling: a dead peer is deprioritized by score penalty, not
// skipped by a ring turn — with one dead and one live peer, far fewer
// than half the rounds fail, and no round is a no-op.
func TestExchangeFailurePenaltyShieldsHealthyPeers(t *testing.T) {
	ctx := context.Background()
	// Peers n1 (live) and n2 (never registered).
	bed := newExBed(t, 3, [][]string{{exName(1), exName(2)}, nil, nil}, func(i int) bool { return i != 2 })
	x := bed.nodes[0].x
	for i := 0; i < 64; i++ {
		_ = x.Step(ctx)
	}
	st := x.Stats()
	// Every step runs a round: the penalty model never no-ops while a
	// live peer exists.
	if st.Rounds != 64 {
		t.Fatalf("rounds = %d, want 64 (penalty model burns no turns)", st.Rounds)
	}
	// Without the penalty the dead peer owns every other pick: ~32
	// failures. Penalized, its probes back off exponentially.
	if st.Failures > 10 {
		t.Fatalf("dead peer consumed %d/%d rounds despite penalty", st.Failures, st.Rounds)
	}
	if got := x.Scheduler().Fails(exName(2)); got == 0 {
		t.Fatal("dead peer accumulated no failure count")
	}
	// The dead peer is still probed occasionally — penalized, not
	// forgotten.
	if st.Failures < 2 {
		t.Fatalf("dead peer was never re-probed (failures = %d)", st.Failures)
	}
}

// TestExchangeFailurePenaltyClearsOnRecovery pins recovery: a peer's
// penalty clears on the first successful round, restoring its full
// claim on the schedule.
func TestExchangeFailurePenaltyClearsOnRecovery(t *testing.T) {
	ctx := context.Background()
	bed := newExBed(t, 2, [][]string{{exName(1)}, nil}, func(i int) bool { return i == 0 })
	x := bed.nodes[0].x
	for i := 0; i < 8; i++ {
		_ = x.Step(ctx)
	}
	st := x.Stats()
	if st.Failures != st.Rounds || st.Failures == 0 {
		t.Fatalf("sole dead peer: stats = %+v", st)
	}
	if x.Scheduler().Fails(exName(1)) < 8 {
		t.Fatalf("failure count = %d, want >= 8", x.Scheduler().Fails(exName(1)))
	}

	// The peer comes back: the next probe succeeds and clears the
	// penalty entirely.
	node1 := bed.nodes[1]
	bed.net.Register(node1.name, gossipEndpoint{hc: node1.hc, g: node1.g})
	if err := x.Step(ctx); err != nil {
		t.Fatalf("post-recovery step: %v", err)
	}
	if got := x.Scheduler().Fails(exName(1)); got != 0 {
		t.Fatalf("successful round left failure count %d", got)
	}
}

// TestExchangeUpdatePeers pins the live membership swap: scheduler
// state survives for retained peers, is pruned for removed ones, and a
// list that normalizes to empty is refused without touching the pool.
func TestExchangeUpdatePeers(t *testing.T) {
	ctx := context.Background()
	bed := newExBed(t, 3, [][]string{{exName(1), exName(2)}, nil, nil}, func(i int) bool { return i != 2 })
	x := bed.nodes[0].x
	for i := 0; i < 8; i++ {
		_ = x.Step(ctx)
	}
	if x.Scheduler().Fails(exName(2)) == 0 {
		t.Fatal("dead peer accumulated no failure count")
	}

	// Retained dead peer keeps its penalty through a membership change.
	if err := x.UpdatePeers([]string{exName(1), exName(2)}); err != nil {
		t.Fatalf("UpdatePeers: %v", err)
	}
	if x.Scheduler().Fails(exName(2)) == 0 {
		t.Fatal("membership change reset a retained peer's penalty")
	}

	// Removing the peer prunes its state; adding it back starts fresh.
	if err := x.UpdatePeers([]string{exName(1)}); err != nil {
		t.Fatalf("UpdatePeers shrink: %v", err)
	}
	if x.Scheduler().Len() != 1 {
		t.Fatalf("pool len %d after shrink, want 1", x.Scheduler().Len())
	}
	if err := x.UpdatePeers([]string{exName(1), exName(2)}); err != nil {
		t.Fatalf("UpdatePeers regrow: %v", err)
	}
	if got := x.Scheduler().Fails(exName(2)); got != 0 {
		t.Fatalf("re-added peer kept stale failure count %d", got)
	}

	// Empty (or self-only) lists are refused and leave the pool alone.
	if err := x.UpdatePeers(nil); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if err := x.UpdatePeers([]string{exName(0), ""}); err == nil {
		t.Fatal("self-only peer list accepted")
	}
	if x.Scheduler().Len() != 2 {
		t.Fatalf("failed update mutated the pool (len %d)", x.Scheduler().Len())
	}

	// The Gossip-level entry point reaches the same loop.
	if err := bed.nodes[0].g.UpdateExchangePeers([]string{exName(1), exName(2)}); err != nil {
		t.Fatalf("Gossip.UpdateExchangePeers: %v", err)
	}
	// A responder-only mechanism (no loop) refuses.
	if err := bed.nodes[1].g.UpdateExchangePeers([]string{exName(0)}); err == nil {
		t.Fatal("UpdateExchangePeers on a loopless mechanism succeeded")
	}
}

// TestExchangeSchedulerStateSurvivesRestart pins the restart bugfix:
// with a StatePath, a peer's failure penalty and staleness anchor
// survive the exchange loop's restart — a long-dead peer does not get
// to burn rounds again just because the node recovered.
func TestExchangeSchedulerStateSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	statePath := filepath.Join(dir, "sched.state")

	bed := newExBed(t, 3, [][]string{nil, nil, nil}, func(i int) bool { return i == 1 })
	n0 := bed.nodes[0]
	cfg := core.ExchangeConfig{
		Peers:     []string{exName(1), exName(2)},
		Interval:  time.Hour,
		StatePath: statePath,
	}
	stop, err := n0.g.StartExchange(ctx, n0.hc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := n0.g.Exchange()
	for i := 0; i < 12; i++ {
		_ = x.Step(ctx)
	}
	failsBefore := x.Scheduler().Fails(exName(2))
	if failsBefore == 0 {
		t.Fatal("dead peer accumulated no failure count before restart")
	}
	stop()
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("scheduler state not persisted: %v", err)
	}

	// "Restart": a fresh gossip+exchange over the same state path.
	bed2 := newExBed(t, 3, [][]string{nil, nil, nil}, func(i int) bool { return i == 1 })
	m0 := bed2.nodes[0]
	stop2, err := m0.g.StartExchange(ctx, m0.hc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop2)
	x2 := m0.g.Exchange()
	if got := x2.Scheduler().Fails(exName(2)); got != failsBefore {
		t.Fatalf("failure penalty after restart = %d, want %d", got, failsBefore)
	}

	// The recovered loop keeps preferring the live peer immediately.
	for i := 0; i < 8; i++ {
		_ = x2.Step(ctx)
	}
	st := x2.Stats()
	if st.Failures > st.Rounds/2 {
		t.Fatalf("restarted loop burned %d/%d rounds on the dead peer", st.Failures, st.Rounds)
	}

	// A corrupt state file is ignored, not fatal.
	if err := os.WriteFile(statePath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	bed3 := newExBed(t, 3, [][]string{nil, nil, nil}, func(i int) bool { return i == 1 })
	p0 := bed3.nodes[0]
	stop3, err := p0.g.StartExchange(ctx, p0.hc, cfg)
	if err != nil {
		t.Fatalf("corrupt state file failed the exchange start: %v", err)
	}
	stop3()
}
