package policy

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/sigcrypto"
)

// gossipBed builds named hosts sharing one registry, each with its own
// ledger and gossip mechanism.
type gossipBed struct {
	reg   *sigcrypto.Registry
	hosts map[string]*core.HostContext
	mechs map[string]*Gossip
	leds  map[string]*Ledger
}

func newGossipBed(t *testing.T, names ...string) *gossipBed {
	t.Helper()
	bed := &gossipBed{
		reg:   sigcrypto.NewRegistry(),
		hosts: make(map[string]*core.HostContext),
		mechs: make(map[string]*Gossip),
		leds:  make(map[string]*Ledger),
	}
	for _, name := range names {
		keys, err := sigcrypto.GenerateKeyPair(name)
		if err != nil {
			t.Fatal(err)
		}
		h, err := host.New(host.Config{Name: name, Keys: keys, Registry: bed.reg})
		if err != nil {
			t.Fatal(err)
		}
		led := NewLedger(LedgerConfig{HalfLife: time.Hour})
		bed.hosts[name] = &core.HostContext{Host: h}
		bed.mechs[name] = NewGossip(led)
		bed.leds[name] = led
	}
	return bed
}

func mkGossipAgent(t *testing.T) *agent.Agent {
	t.Helper()
	ag, err := agent.New("gossip-agent", "owner", `proc main() { done() }`, "main")
	if err != nil {
		t.Fatal(err)
	}
	return ag
}

func setEntries(t *testing.T, ag *agent.Agent, entries []GossipEntry) {
	t.Helper()
	enc, err := encodeEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	ag.SetBaggage(GossipMechanismName, enc)
}

// TestGossipRoundTrip: a detection at A travels to B in agent baggage
// and lands, damped, in B's ledger.
func TestGossipRoundTrip(t *testing.T) {
	ctx := context.Background()
	bed := newGossipBed(t, "a", "b")
	bed.leds["a"].Observe("mallory", false, 0)

	ag := mkGossipAgent(t)
	if err := bed.mechs["a"].PrepareDeparture(ctx, bed.hosts["a"], ag, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bed.mechs["b"].CheckAfterSession(ctx, bed.hosts["b"], ag); err != nil {
		t.Fatal(err)
	}
	got := bed.leds["b"].Suspicion("mallory")
	if math.Abs(got-0.9) > 1e-6 { // 1.0 damped by 0.9, no decay (fresh)
		t.Fatalf("gossiped suspicion at b = %v, want ~0.9", got)
	}
}

// TestGossipForgedFloodDoesNotCrowdOutHonestExtracts pins the re-carry
// rule: entries that fail arrival verification are dropped from the
// baggage an honest host sends onward, so a malicious host cannot pad
// the maxGossipEntries cap with junk and suppress real gossip.
func TestGossipForgedFloodDoesNotCrowdOutHonestExtracts(t *testing.T) {
	ctx := context.Background()
	bed := newGossipBed(t, "honest", "next")
	bed.leds["honest"].Observe("mallory", false, 0)

	// A full cap of forged max-suspicion entries from an unregistered
	// observer, plus garbage signatures.
	forged := make([]GossipEntry, maxGossipEntries)
	for i := range forged {
		forged[i] = GossipEntry{
			Observer:   "forger",
			Host:       "victim",
			Suspicion:  math.MaxFloat64,
			AtUnixNano: time.Now().UnixNano(),
			Sig:        sigcrypto.Signature{Signer: "forger", Sig: []byte("junk")},
		}
	}
	ag := mkGossipAgent(t)
	setEntries(t, ag, forged)

	if _, err := bed.mechs["honest"].CheckAfterSession(ctx, bed.hosts["honest"], ag); err != nil {
		t.Fatal(err)
	}
	if got := bed.leds["honest"].Suspicion("victim"); got != 0 {
		t.Fatalf("forged entries merged: victim suspicion %v", got)
	}
	if err := bed.mechs["honest"].PrepareDeparture(ctx, bed.hosts["honest"], ag, nil); err != nil {
		t.Fatal(err)
	}
	data, ok := ag.GetBaggage(GossipMechanismName)
	if !ok {
		t.Fatal("honest host attached no gossip")
	}
	out := decodeEntries(data)
	if len(out) != 1 || out[0].Observer != "honest" || out[0].Host != "mallory" {
		t.Fatalf("departure baggage = %+v, want only honest's own extract about mallory", out)
	}
	// And a pure-junk carrier is stripped entirely.
	ag2 := mkGossipAgent(t)
	setEntries(t, ag2, forged)
	bed2 := newGossipBed(t, "clean")
	if _, err := bed2.mechs["clean"].CheckAfterSession(ctx, bed2.hosts["clean"], ag2); err != nil {
		t.Fatal(err)
	}
	if err := bed2.mechs["clean"].PrepareDeparture(ctx, bed2.hosts["clean"], ag2, nil); err != nil {
		t.Fatal(err)
	}
	if _, still := ag2.GetBaggage(GossipMechanismName); still {
		t.Error("unverifiable gossip baggage not stripped by a host with nothing to share")
	}
}

// TestGossipDefamationCapped pins the merge cap: even a validly signed
// astronomical claim cannot push a victim's suspicion beyond the merge
// ceiling.
func TestGossipDefamationCapped(t *testing.T) {
	ctx := context.Background()
	bed := newGossipBed(t, "defamer", "receiver")

	e := GossipEntry{
		Observer:  "defamer",
		Host:      "victim",
		Suspicion: 1e12,
		// Future-dated, trying to dodge decay.
		AtUnixNano: time.Now().Add(time.Hour).UnixNano(),
	}
	e.Sig = bed.hosts["defamer"].Host.Keys().SignDigest(e.bindingDigest())
	ag := mkGossipAgent(t)
	setEntries(t, ag, []GossipEntry{e})

	if _, err := bed.mechs["receiver"].CheckAfterSession(ctx, bed.hosts["receiver"], ag); err != nil {
		t.Fatal(err)
	}
	got := bed.leds["receiver"].Suspicion("victim")
	want := maxMergeSuspicion * 0.9
	if got <= 0 || got > want+1e-9 {
		t.Fatalf("defamed suspicion = %v, want in (0, %v]", got, want)
	}
}
