package policy

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/transport"
)

// Anti-entropy reputation exchange. Gossip in agent baggage spreads a
// detection only along the carrying agent's route: two sub-fleets whose
// agents never cross paths never converge on a shared picture of a
// cheater, no matter how many times one of them catches it. The
// Exchange closes that gap with a classic anti-entropy protocol over
// the existing call path:
//
//	initiator                         responder
//	   | reputation/offer                 |
//	   |  (budget, ledger summary,        |
//	   |   own signed extracts)  -------> |  verify + Merge extracts
//	   |                                  |  delta = own extracts the
//	   |                                  |  summary shows the initiator
//	   | <------ signed extract delta     |  is missing
//	   |  verify + Merge                  |
//
// Both directions carry ordinary GossipEntry extracts — the same
// signed format, the same bounded tuple codec, and the same
// verify-then-Merge ingestion as baggage gossip — so the damping and
// merge cap that bound defamation for in-baggage gossip bound the
// exchange identically: a lying peer can assert at most
// maxMergeSuspicion about a victim, adopted value contracts by
// gossipDamping per relay hop, and replayed or duplicated offers are
// idempotent because Merge is a decayed max.
//
// Peers are visited in randomized round-robin: the configured peer
// list is shuffled once (seeded from the host name, so a node's visit
// order is deterministic and test-replayable while differing across
// nodes) and each round advances one position — every peer is reached
// within len(peers) rounds, which upper-bounds fleet convergence time.
const (
	// offerWireLabel / summaryWireLabel / deltaWireLabel version the
	// three exchange message framings.
	offerWireLabel   = "policy-gossip-offer"
	summaryWireLabel = "policy-gossip-summary"
	deltaWireLabel   = "policy-gossip-delta"

	// MaxExchangeWireBytes bounds a whole offer or delta message; it is
	// checked before parsing, like the entry-list bound.
	MaxExchangeWireBytes = 256 * 1024
	// maxSummaryEntries bounds the ledger summary an offer may carry;
	// maxSummaryWireBytes bounds its encoded size on the sending side
	// (half the message bound, leaving room for the pushed entry list
	// plus framing), so long principal names shrink the summary
	// instead of failing the round.
	maxSummaryEntries   = 1024
	maxSummaryWireBytes = MaxExchangeWireBytes / 2
	// exchangeCallTimeout bounds one peer call so a hung peer cannot
	// stall the loop past its own round.
	exchangeCallTimeout = 15 * time.Second

	// maxPeerCooldownRounds caps the per-peer failure backoff: a peer
	// that keeps failing its rounds is skipped for exponentially many
	// of its ring turns (1, 2, 4, ...), but never longer than this, so
	// a long-dead peer stops burning exchange budget yet is probed
	// again within a bounded number of its turns once it recovers.
	maxPeerCooldownRounds = 16
)

// ErrExchangeWire is wrapped by rejections of exchange message framing.
var ErrExchangeWire = errors.New("policy: malformed exchange message")

// summaryItem is one (host, suspicion) pair of an offer's ledger
// summary: what the initiator already believes, so the responder can
// answer with only the delta.
type summaryItem struct {
	Host      string
	Suspicion float64
}

// encodeOffer renders an offer: the initiator's reply budget, its
// ledger summary, and its own signed extracts (the push half).
func encodeOffer(budget int, summary []summaryItem, entries []GossipEntry) ([]byte, error) {
	enc, err := encodeEntries(entries)
	if err != nil {
		return nil, err
	}
	sfields := make([][]byte, 0, 1+len(summary))
	sfields = append(sfields, []byte(summaryWireLabel))
	for _, s := range summary {
		if len(s.Host) > maxPrincipalLen {
			return nil, fmt.Errorf("%w: summary host over bound", ErrExchangeWire)
		}
		sfields = append(sfields, canon.Tuple([]byte(s.Host), appendU64(floatBits(s.Suspicion))))
	}
	out := canon.Tuple(
		[]byte(offerWireLabel),
		appendU64(uint64(budget)),
		canon.Tuple(sfields...),
		enc,
	)
	if len(out) > MaxExchangeWireBytes {
		return nil, fmt.Errorf("%w: %d bytes over %d", ErrExchangeWire, len(out), MaxExchangeWireBytes)
	}
	return out, nil
}

// decodeOffer parses an offer, clamping the requested budget and
// bounding every dimension before allocation.
func decodeOffer(body []byte) (budget int, summary map[string]float64, entries []GossipEntry, err error) {
	if len(body) > MaxExchangeWireBytes {
		return 0, nil, nil, fmt.Errorf("%w: %d bytes over %d", ErrExchangeWire, len(body), MaxExchangeWireBytes)
	}
	fields, err := canon.ParseTuple(body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: %v", ErrExchangeWire, err)
	}
	if len(fields) != 4 || string(fields[0]) != offerWireLabel || len(fields[1]) != 8 {
		return 0, nil, nil, fmt.Errorf("%w: bad offer framing", ErrExchangeWire)
	}
	budget = int(binary.BigEndian.Uint64(fields[1]))
	if budget < 1 {
		budget = 1
	}
	if budget > core.MaxExchangeBudget {
		budget = core.MaxExchangeBudget
	}
	sfields, err := canon.ParseTuple(fields[2])
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: summary: %v", ErrExchangeWire, err)
	}
	if len(sfields) == 0 || string(sfields[0]) != summaryWireLabel {
		return 0, nil, nil, fmt.Errorf("%w: bad summary framing", ErrExchangeWire)
	}
	if len(sfields)-1 > maxSummaryEntries {
		return 0, nil, nil, fmt.Errorf("%w: %d summary entries over %d", ErrExchangeWire, len(sfields)-1, maxSummaryEntries)
	}
	summary = make(map[string]float64, len(sfields)-1)
	for _, f := range sfields[1:] {
		item, err := canon.ParseTuple(f)
		if err != nil || len(item) != 2 || len(item[0]) > maxPrincipalLen || len(item[1]) != 8 {
			return 0, nil, nil, fmt.Errorf("%w: bad summary item", ErrExchangeWire)
		}
		summary[string(item[0])] = floatFromBits(binary.BigEndian.Uint64(item[1]))
	}
	entries, err = decodeEntriesBounded(fields[3], core.MaxExchangeBudget)
	if err != nil {
		return 0, nil, nil, err
	}
	return budget, summary, entries, nil
}

// encodeDelta renders the responder's reply: its signed extracts the
// initiator's summary showed missing.
func encodeDelta(entries []GossipEntry) ([]byte, error) {
	enc, err := encodeEntries(entries)
	if err != nil {
		return nil, err
	}
	return canon.Tuple([]byte(deltaWireLabel), enc), nil
}

// decodeDelta parses a delta reply under the same bounds as an offer.
func decodeDelta(body []byte) ([]GossipEntry, error) {
	if len(body) > MaxExchangeWireBytes {
		return nil, fmt.Errorf("%w: %d bytes over %d", ErrExchangeWire, len(body), MaxExchangeWireBytes)
	}
	fields, err := canon.ParseTuple(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeWire, err)
	}
	if len(fields) != 2 || string(fields[0]) != deltaWireLabel {
		return nil, fmt.Errorf("%w: bad delta framing", ErrExchangeWire)
	}
	return decodeEntriesBounded(fields[1], core.MaxExchangeBudget)
}

// Exchange runs the anti-entropy loop for one node. It is created
// through Gossip.StartExchange (the node lifecycle); tests and the
// bench harness drive rounds deterministically with Step.
type Exchange struct {
	gossip *Gossip
	hc     *core.HostContext
	self   string
	cfg    core.ExchangeConfig
	now    func() time.Time

	mu    sync.Mutex
	peers []string // shuffled ring; next indexes the coming round
	next  int
	// cool tracks per-peer failure backoff: a peer that failed its
	// last round is skipped for exponentially many of its ring turns
	// (reset to zero by the first success).
	cool    map[string]*peerCooldown
	stats   core.ExchangeStats
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// peerCooldown is one peer's failure-backoff state.
type peerCooldown struct {
	// fails counts consecutive failed rounds; skip is how many of the
	// peer's coming ring turns are passed over before the next probe.
	fails int
	skip  int
}

// newExchange validates and normalizes the configuration. The peer
// list is deduplicated, purged of the node itself, and shuffled with a
// seed derived from the host name.
func newExchange(g *Gossip, hc *core.HostContext, cfg core.ExchangeConfig) (*Exchange, error) {
	if hc == nil || hc.Host == nil || hc.Net == nil {
		return nil, errors.New("policy: exchange needs a host context with a network")
	}
	self := hc.Host.Name()
	peers, err := normalizeRing(self, cfg.Peers)
	if err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = core.DefaultExchangeInterval
	}
	if cfg.Budget <= 0 {
		cfg.Budget = core.DefaultExchangeBudget
	}
	if cfg.Budget > core.MaxExchangeBudget {
		cfg.Budget = core.MaxExchangeBudget
	}
	return &Exchange{
		gossip: g,
		hc:     hc,
		self:   self,
		cfg:    cfg,
		now:    g.now,
		peers:  peers,
		cool:   make(map[string]*peerCooldown),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// normalizeRing deduplicates the peer list, purges the node itself,
// and shuffles with a seed derived from the host name — so a node's
// visit order is deterministic and test-replayable while differing
// across nodes. Shared by construction and live peer updates, so a
// membership change reshuffles the same way a restart would.
func normalizeRing(self string, list []string) ([]string, error) {
	seen := make(map[string]bool, len(list))
	peers := make([]string, 0, len(list))
	for _, p := range list {
		if p == "" || p == self || seen[p] {
			continue
		}
		seen[p] = true
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("policy: exchange at %s has no usable peers", self)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(self))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	return peers, nil
}

// UpdatePeers replaces the ring with a new fleet membership: the list
// is normalized and reshuffled exactly as at construction, the ring
// position resets, and cooldown state survives for peers present in
// both lists (a dead peer does not earn a fresh probe budget just
// because an unrelated node joined).
func (x *Exchange) UpdatePeers(peers []string) error {
	ring, err := normalizeRing(x.self, peers)
	if err != nil {
		return err
	}
	keep := make(map[string]bool, len(ring))
	for _, p := range ring {
		keep[p] = true
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.peers = ring
	x.next = 0
	for p := range x.cool {
		if !keep[p] {
			delete(x.cool, p)
		}
	}
	return nil
}

// run paces Step until the node closes or the loop is stopped.
func (x *Exchange) run(ctx context.Context) {
	defer close(x.done)
	t := time.NewTicker(x.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-x.stop:
			return
		case <-t.C:
			_ = x.Step(ctx)
		}
	}
}

// halt stops the loop and blocks until it has exited; idempotent.
func (x *Exchange) halt() {
	x.mu.Lock()
	if !x.stopped {
		x.stopped = true
		close(x.stop)
	}
	x.mu.Unlock()
	<-x.done
}

// Stats snapshots the loop's counters (the offer-serving counter lives
// on the Gossip mechanism; Gossip.ExchangeStats merges it in).
func (x *Exchange) Stats() core.ExchangeStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.stats
}

// nextPeer advances the shuffled ring to the next peer that is not
// cooling down, consuming one skip credit from each cooling peer it
// passes. It returns "" when every peer is cooling — the round is a
// no-op rather than a forced probe of a known-dead fleet.
func (x *Exchange) nextPeer() string {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := len(x.peers)
	for i := 0; i < n; i++ {
		p := x.peers[x.next%n]
		x.next++
		if c := x.cool[p]; c != nil && c.skip > 0 {
			c.skip--
			x.stats.PeersSkipped++
			continue
		}
		return p
	}
	return ""
}

// noteOutcome updates the peer's failure backoff after a round: a
// success clears it; a failure doubles the number of the peer's ring
// turns skipped before the next probe (1, 2, 4, ... capped at
// maxPeerCooldownRounds).
func (x *Exchange) noteOutcome(peer string, err error) {
	if err == nil {
		delete(x.cool, peer)
		return
	}
	c := x.cool[peer]
	if c == nil {
		c = &peerCooldown{}
		x.cool[peer] = c
	}
	c.fails++
	skip := maxPeerCooldownRounds
	if c.fails <= 5 { // 2^(fails-1) overtakes the cap from the 6th failure
		skip = 1 << (c.fails - 1)
	}
	if skip > maxPeerCooldownRounds {
		skip = maxPeerCooldownRounds
	}
	c.skip = skip
}

// Step runs one exchange round against the next peer of the shuffled
// ring: push our signed extracts, pull the peer's delta, verify and
// merge it. Exported so tests and the convergence bench can drive
// rounds deterministically instead of waiting out the interval; the
// background loop calls it on every tick. A round where every peer is
// cooling down after failures performs no call and counts no round.
func (x *Exchange) Step(ctx context.Context) error {
	peer := x.nextPeer()
	if peer == "" {
		return nil
	}
	x.mu.Lock()
	mergedBefore := x.stats.EntriesMerged
	x.mu.Unlock()
	err := x.exchangeWith(ctx, peer)
	x.mu.Lock()
	x.stats.Rounds++
	x.stats.LastPeer = peer
	x.stats.LastUnixNano = x.now().UnixNano()
	if err != nil {
		x.stats.Failures++
	}
	x.noteOutcome(peer, err)
	merged := x.stats.EntriesMerged - mergedBefore
	var skip, fails int
	if c := x.cool[peer]; c != nil {
		skip, fails = c.skip, c.fails
	}
	x.mu.Unlock()
	if bus := x.gossip.bus; bus != nil {
		ok := "true"
		if err != nil {
			ok = "false"
		}
		bus.Publish(events.Event{
			Kind: events.KindExchangeRound,
			Host: peer,
			Fields: map[string]string{
				"ok":     ok,
				"merged": strconv.FormatInt(merged, 10),
			},
		})
		if err != nil {
			bus.Publish(events.Event{
				Kind: events.KindPeerCooldown,
				Host: peer,
				Fields: map[string]string{
					"skip":  strconv.Itoa(skip),
					"fails": strconv.Itoa(fails),
				},
			})
		}
	}
	return err
}

// exchangeWith performs the offer/delta round trip with one peer.
func (x *Exchange) exchangeWith(ctx context.Context, peer string) error {
	ctx, cancel := context.WithTimeout(ctx, exchangeCallTimeout)
	defer cancel()

	// One ledger snapshot serves the whole round: the push half (our
	// extracts, budget-capped) and the summary, which covers a wider
	// slice than we push so the peer can skip anything we already know
	// at least as well.
	snap := x.gossip.ledger.Snapshot(0)
	push := x.gossip.extracts(snap, x.self, x.hc.Host.Keys(), x.cfg.Budget, nil)
	summaryLimit := 4 * x.cfg.Budget
	if summaryLimit > maxSummaryEntries {
		summaryLimit = maxSummaryEntries
	}
	var summary []summaryItem
	size := 0
	for _, rep := range snap {
		if len(summary) >= summaryLimit {
			break
		}
		if len(rep.Host) > maxPrincipalLen {
			// Unencodable name: skip it (as extract selection does)
			// rather than fail the round.
			continue
		}
		size += summaryItemWireSize(rep.Host)
		if size > maxSummaryWireBytes {
			break
		}
		summary = append(summary, summaryItem{Host: rep.Host, Suspicion: rep.Suspicion})
	}
	body, err := encodeOffer(x.cfg.Budget, summary, push)
	if err != nil {
		return fmt.Errorf("policy: exchange at %s: %w", x.self, err)
	}
	reply, err := x.hc.Net.Call(ctx, peer, GossipMechanismName+"/offer", body)
	if err != nil {
		return fmt.Errorf("policy: exchange %s->%s: %w", x.self, peer, err)
	}
	delta, err := decodeDelta(reply)
	if err != nil {
		return fmt.Errorf("policy: exchange %s->%s: %w", x.self, peer, err)
	}
	merged := x.gossip.mergeVerified(x.hc.Host.Registry(), x.self, delta)
	x.mu.Lock()
	x.stats.EntriesSent += int64(len(push))
	x.stats.EntriesReceived += int64(len(delta))
	x.stats.EntriesMerged += int64(len(merged))
	x.mu.Unlock()
	return nil
}

// floatBits / floatFromBits keep the summary's float encoding in one
// place (IEEE-754 big-endian bits, like every float on this wire).
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }

// --- Gossip's exchange surface -------------------------------------

// HandleCall implements core.CallHandler: "offer" answers one
// anti-entropy round. The pushed extracts pass through the same
// verify-then-Merge as baggage gossip; the reply carries this host's
// own signed extracts for every ledger entry the initiator's summary
// shows it is missing (or knows weaker than damping could improve).
func (m *Gossip) HandleCall(_ context.Context, hc *core.HostContext, method string, body []byte) ([]byte, error) {
	if method != "offer" {
		return nil, fmt.Errorf("%w: %s/%s", transport.ErrUnknownMethod, GossipMechanismName, method)
	}
	budget, summary, pushed, err := decodeOffer(body)
	if err != nil {
		return nil, err
	}
	self := hc.Host.Name()
	m.mergeVerified(hc.Host.Registry(), self, pushed)
	delta := m.extracts(m.ledger.Snapshot(0), self, hc.Host.Keys(), budget, func(rep core.HostReputation) bool {
		have, known := summary[rep.Host]
		// Useless to send: after damping the initiator's merge could
		// not raise what it already has.
		return known && rep.Suspicion*gossipDamping <= have+1e-9
	})
	m.exMu.Lock()
	m.offersServed++
	m.exMu.Unlock()
	return encodeDelta(delta)
}

// StartExchange implements core.Exchanger: the node starts the loop at
// construction and stops it at Close. A Gossip instance runs at most
// one loop (mechanism instances are per-node).
func (m *Gossip) StartExchange(ctx context.Context, hc *core.HostContext, cfg core.ExchangeConfig) (func(), error) {
	x, err := newExchange(m, hc, cfg)
	if err != nil {
		return nil, err
	}
	m.exMu.Lock()
	if m.exchange != nil {
		m.exMu.Unlock()
		return nil, errors.New("policy: exchange already started for this gossip mechanism")
	}
	m.exchange = x
	m.exMu.Unlock()
	go x.run(ctx)
	return x.halt, nil
}

// Exchange returns the running anti-entropy loop, or nil when the node
// runs gossip-in-baggage only. The convergence bench uses it to drive
// rounds deterministically.
func (m *Gossip) Exchange() *Exchange {
	m.exMu.Lock()
	defer m.exMu.Unlock()
	return m.exchange
}

// UpdateExchangePeers implements core.ExchangePeerUpdater: the running
// loop adopts a new fleet membership without a node restart. Errors
// when no loop is running (gossip-in-baggage only) or when the new
// list normalizes to empty.
func (m *Gossip) UpdateExchangePeers(peers []string) error {
	m.exMu.Lock()
	x := m.exchange
	m.exMu.Unlock()
	if x == nil {
		return errors.New("policy: no exchange loop running for this gossip mechanism")
	}
	return x.UpdatePeers(peers)
}

var _ core.ExchangePeerUpdater = (*Gossip)(nil)

// ExchangeStats implements core.ExchangeReporter.
func (m *Gossip) ExchangeStats() (core.ExchangeStats, bool) {
	m.exMu.Lock()
	x := m.exchange
	served := m.offersServed
	m.exMu.Unlock()
	if x == nil {
		return core.ExchangeStats{OffersServed: served}, false
	}
	st := x.Stats()
	st.OffersServed = served
	return st, true
}

// Close stops the exchange loop, if one is running; io.Closer so
// protection.Stack.Close tears the loop down with the rest of the
// stack. Safe to call alongside (or after) the owning node's Close.
func (m *Gossip) Close() error {
	m.exMu.Lock()
	x := m.exchange
	m.exMu.Unlock()
	if x != nil {
		x.halt()
	}
	return nil
}
