package policy

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/transport"
)

// Anti-entropy reputation exchange. Gossip in agent baggage spreads a
// detection only along the carrying agent's route: two sub-fleets whose
// agents never cross paths never converge on a shared picture of a
// cheater, no matter how many times one of them catches it. The
// Exchange closes that gap with a classic anti-entropy protocol over
// the existing call path:
//
//	initiator                         responder
//	   | reputation/offer                 |
//	   |  (initiator, budget,             |
//	   |   ledger summary,                |
//	   |   own signed extracts)  -------> |  verify + Merge extracts
//	   |                                  |  delta = own extracts the
//	   |                                  |  summary shows the initiator
//	   | <------ signed extract delta     |  is missing
//	   |  verify + Merge                  |
//
// Both directions carry ordinary GossipEntry extracts — the same
// signed format, the same bounded tuple codec, and the same
// verify-then-Merge ingestion as baggage gossip — so the damping and
// merge cap that bound defamation for in-baggage gossip bound the
// exchange identically: a lying peer can assert at most
// maxMergeSuspicion about a victim, adopted value contracts by
// gossipDamping per relay hop, and replayed or duplicated offers are
// idempotent because Merge is a decayed max.
//
// Partner selection is the weighted Scheduler (schedule.go): each round
// visits the peer scoring highest on staleness × estimated ledger
// distance, with failures folded in as a score penalty. With nothing to
// separate peers the scheduler degenerates to a deterministic
// round-robin, so the old ring's convergence bound — every peer within
// len(peers) rounds — still holds; with signal, divergent and
// long-unseen peers are reached sooner.
//
// In hierarchical mode (core.ExchangeRoleMember / RoleAggregator) the
// same loop runs over a role-derived partner pool: members pull from
// the designated aggregators only, aggregators from each other with a
// larger budget, and the fleet's per-round message count drops from
// O(N²) toward O(N + A²).
const (
	// offerWireLabel / summaryWireLabel / deltaWireLabel version the
	// three exchange message framings.
	offerWireLabel   = "policy-gossip-offer"
	summaryWireLabel = "policy-gossip-summary"
	deltaWireLabel   = "policy-gossip-delta"

	// MaxExchangeWireBytes bounds a whole offer or delta message; it is
	// checked before parsing, like the entry-list bound.
	MaxExchangeWireBytes = 256 * 1024
	// maxSummaryEntries bounds the ledger summary an offer may carry;
	// maxSummaryWireBytes bounds its encoded size on the sending side
	// (half the message bound, leaving room for the pushed entry list
	// plus framing), so long principal names shrink the summary
	// instead of failing the round.
	maxSummaryEntries   = 1024
	maxSummaryWireBytes = MaxExchangeWireBytes / 2
	// exchangeCallTimeout bounds one peer call so a hung peer cannot
	// stall the loop past its own round.
	exchangeCallTimeout = 15 * time.Second
)

// ErrExchangeWire is wrapped by rejections of exchange message framing.
var ErrExchangeWire = errors.New("policy: malformed exchange message")

// summaryItem is one (host, suspicion) pair of an offer's ledger
// summary: what the initiator already believes, so the responder can
// answer with only the delta.
type summaryItem struct {
	Host      string
	Suspicion float64
}

// encodeOffer renders an offer: the initiator's name (so the responder
// can feed its own scheduler's distance estimate for that peer), its
// reply budget, its ledger summary, and its own signed extracts (the
// push half).
func encodeOffer(initiator string, budget int, summary []summaryItem, entries []GossipEntry) ([]byte, error) {
	if len(initiator) > maxPrincipalLen {
		return nil, fmt.Errorf("%w: initiator name over bound", ErrExchangeWire)
	}
	enc, err := encodeEntries(entries)
	if err != nil {
		return nil, err
	}
	sfields := make([][]byte, 0, 1+len(summary))
	sfields = append(sfields, []byte(summaryWireLabel))
	for _, s := range summary {
		if len(s.Host) > maxPrincipalLen {
			return nil, fmt.Errorf("%w: summary host over bound", ErrExchangeWire)
		}
		sfields = append(sfields, canon.Tuple([]byte(s.Host), appendU64(floatBits(s.Suspicion))))
	}
	out := canon.Tuple(
		[]byte(offerWireLabel),
		[]byte(initiator),
		appendU64(uint64(budget)),
		canon.Tuple(sfields...),
		enc,
	)
	if len(out) > MaxExchangeWireBytes {
		return nil, fmt.Errorf("%w: %d bytes over %d", ErrExchangeWire, len(out), MaxExchangeWireBytes)
	}
	return out, nil
}

// decodeOffer parses an offer, clamping the requested budget and
// bounding every dimension before allocation. The initiator name is
// advisory routing metadata (it tunes the responder's scheduler), not
// trust: trust rides only on the per-entry signatures.
func decodeOffer(body []byte) (initiator string, budget int, summary map[string]float64, entries []GossipEntry, err error) {
	if len(body) > MaxExchangeWireBytes {
		return "", 0, nil, nil, fmt.Errorf("%w: %d bytes over %d", ErrExchangeWire, len(body), MaxExchangeWireBytes)
	}
	fields, err := canon.ParseTuple(body)
	if err != nil {
		return "", 0, nil, nil, fmt.Errorf("%w: %v", ErrExchangeWire, err)
	}
	if len(fields) != 5 || string(fields[0]) != offerWireLabel ||
		len(fields[1]) > maxPrincipalLen || len(fields[2]) != 8 {
		return "", 0, nil, nil, fmt.Errorf("%w: bad offer framing", ErrExchangeWire)
	}
	initiator = string(fields[1])
	budget = int(binary.BigEndian.Uint64(fields[2]))
	if budget < 1 {
		budget = 1
	}
	if budget > core.MaxExchangeBudget {
		budget = core.MaxExchangeBudget
	}
	sfields, err := canon.ParseTuple(fields[3])
	if err != nil {
		return "", 0, nil, nil, fmt.Errorf("%w: summary: %v", ErrExchangeWire, err)
	}
	if len(sfields) == 0 || string(sfields[0]) != summaryWireLabel {
		return "", 0, nil, nil, fmt.Errorf("%w: bad summary framing", ErrExchangeWire)
	}
	if len(sfields)-1 > maxSummaryEntries {
		return "", 0, nil, nil, fmt.Errorf("%w: %d summary entries over %d", ErrExchangeWire, len(sfields)-1, maxSummaryEntries)
	}
	summary = make(map[string]float64, len(sfields)-1)
	for _, f := range sfields[1:] {
		item, err := canon.ParseTuple(f)
		if err != nil || len(item) != 2 || len(item[0]) > maxPrincipalLen || len(item[1]) != 8 {
			return "", 0, nil, nil, fmt.Errorf("%w: bad summary item", ErrExchangeWire)
		}
		summary[string(item[0])] = floatFromBits(binary.BigEndian.Uint64(item[1]))
	}
	entries, err = decodeEntriesBounded(fields[4], core.MaxExchangeBudget)
	if err != nil {
		return "", 0, nil, nil, err
	}
	return initiator, budget, summary, entries, nil
}

// encodeDelta renders the responder's reply: its signed extracts the
// initiator's summary showed missing.
func encodeDelta(entries []GossipEntry) ([]byte, error) {
	enc, err := encodeEntries(entries)
	if err != nil {
		return nil, err
	}
	return canon.Tuple([]byte(deltaWireLabel), enc), nil
}

// decodeDelta parses a delta reply under the same bounds as an offer.
func decodeDelta(body []byte) ([]GossipEntry, error) {
	if len(body) > MaxExchangeWireBytes {
		return nil, fmt.Errorf("%w: %d bytes over %d", ErrExchangeWire, len(body), MaxExchangeWireBytes)
	}
	fields, err := canon.ParseTuple(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeWire, err)
	}
	if len(fields) != 2 || string(fields[0]) != deltaWireLabel {
		return nil, fmt.Errorf("%w: bad delta framing", ErrExchangeWire)
	}
	return decodeEntriesBounded(fields[1], core.MaxExchangeBudget)
}

// Exchange runs the anti-entropy loop for one node. It is created
// through Gossip.StartExchange (the node lifecycle); tests and the
// bench harness drive rounds deterministically with Step.
type Exchange struct {
	gossip *Gossip
	hc     *core.HostContext
	self   string
	cfg    core.ExchangeConfig
	now    func() time.Time

	// sched is the weighted partner scheduler over the role-derived
	// pool; role and aggSet derive partner pools from membership
	// updates; budget is the effective per-round entry budget (the
	// aggregator budget on the aggregator tier).
	sched  *Scheduler
	role   core.ExchangeRole
	aggSet map[string]bool
	budget int
	// statePath, when non-empty, persists the scheduler's per-peer
	// state after every round (and loads it at construction) — the
	// restart memory that keeps a recovered node from re-probing every
	// long-dead peer at full budget.
	statePath string

	mu      sync.Mutex
	stats   core.ExchangeStats
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// newExchange validates and normalizes the configuration, derives the
// role's partner pool, and restores persisted scheduler state.
func newExchange(g *Gossip, hc *core.HostContext, cfg core.ExchangeConfig) (*Exchange, error) {
	if hc == nil || hc.Host == nil || hc.Net == nil {
		return nil, errors.New("policy: exchange needs a host context with a network")
	}
	self := hc.Host.Name()
	role := cfg.Role
	if role == "" {
		role = core.ExchangeRoleFlat
	}
	if cfg.Interval <= 0 {
		cfg.Interval = core.DefaultExchangeInterval
	}
	if cfg.Budget <= 0 {
		cfg.Budget = core.DefaultExchangeBudget
	}
	if cfg.Budget > core.MaxExchangeBudget {
		cfg.Budget = core.MaxExchangeBudget
	}
	budget := cfg.Budget
	var aggSet map[string]bool
	if role != core.ExchangeRoleFlat {
		if len(cfg.Aggregators) == 0 {
			return nil, fmt.Errorf("policy: exchange role %q at %s needs aggregators", role, self)
		}
		aggSet = make(map[string]bool, len(cfg.Aggregators))
		for _, a := range cfg.Aggregators {
			if a != "" {
				aggSet[a] = true
			}
		}
		if role == core.ExchangeRoleAggregator {
			if !aggSet[self] {
				return nil, fmt.Errorf("policy: aggregator %s is not in its own aggregator list", self)
			}
			budget = cfg.AggregatorBudget
			if budget <= 0 {
				budget = core.DefaultAggregatorBudgetFactor * cfg.Budget
			}
			if budget > core.MaxExchangeBudget {
				budget = core.MaxExchangeBudget
			}
		}
	}
	pool, err := derivePool(self, role, aggSet, cfg.Peers)
	if err != nil {
		return nil, err
	}
	x := &Exchange{
		gossip:    g,
		hc:        hc,
		self:      self,
		cfg:       cfg,
		now:       g.now,
		sched:     NewScheduler(self, pool, g.now()),
		role:      role,
		aggSet:    aggSet,
		budget:    budget,
		statePath: cfg.StatePath,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	x.stats.Role = string(role)
	if x.statePath != "" {
		if data, err := os.ReadFile(x.statePath); err == nil {
			// A torn or stale state file costs only the restart memory;
			// the scheduler starts fresh then.
			_ = x.sched.ApplyState(data)
		}
	}
	return x, nil
}

// derivePool maps a fleet membership list to the node's partner pool
// for its tier. Flat nodes draw from the whole list; members from the
// aggregators; aggregators from the other aggregators (a sole
// aggregator gets an empty pool — it initiates nothing but still
// serves its members' offers).
func derivePool(self string, role core.ExchangeRole, aggSet map[string]bool, fleet []string) ([]string, error) {
	var pool []string
	switch role {
	case core.ExchangeRoleFlat:
		pool = dedupe(self, fleet)
		if len(pool) == 0 {
			return nil, fmt.Errorf("policy: exchange at %s has no usable peers", self)
		}
	case core.ExchangeRoleMember:
		for a := range aggSet {
			if a != self {
				pool = append(pool, a)
			}
		}
		if len(pool) == 0 {
			return nil, fmt.Errorf("policy: member %s has no usable aggregators", self)
		}
	case core.ExchangeRoleAggregator:
		for a := range aggSet {
			if a != self {
				pool = append(pool, a)
			}
		}
	default:
		return nil, fmt.Errorf("policy: unknown exchange role %q", role)
	}
	return pool, nil
}

// dedupe drops empties, self, and duplicates, preserving order.
func dedupe(self string, list []string) []string {
	seen := make(map[string]bool, len(list))
	out := make([]string, 0, len(list))
	for _, p := range list {
		if p == "" || p == self || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// UpdatePeers adopts a new fleet membership. Flat nodes replace their
// pool with the list; hierarchical tiers re-derive theirs from the
// configured aggregator set intersected with the list (an aggregator
// that left the fleet stops being anyone's partner, but membership
// churn among plain members never touches a member's pool). Scheduler
// state survives for peers present in both pools — a dead peer does
// not earn a fresh probe budget because an unrelated node joined.
func (x *Exchange) UpdatePeers(peers []string) error {
	var pool []string
	switch x.role {
	case core.ExchangeRoleFlat:
		pool = dedupe(x.self, peers)
		if len(pool) == 0 {
			return fmt.Errorf("policy: exchange at %s has no usable peers", x.self)
		}
	default:
		present := make(map[string]bool, len(peers))
		for _, p := range peers {
			present[p] = true
		}
		for a := range x.aggSet {
			if a != x.self && present[a] {
				pool = append(pool, a)
			}
		}
		if x.role == core.ExchangeRoleMember && len(pool) == 0 {
			return fmt.Errorf("policy: member %s has no usable aggregators", x.self)
		}
	}
	x.sched.UpdatePeers(pool)
	return nil
}

// run paces Step until the node closes or the loop is stopped.
func (x *Exchange) run(ctx context.Context) {
	defer close(x.done)
	t := time.NewTicker(x.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-x.stop:
			return
		case <-t.C:
			_ = x.Step(ctx)
		}
	}
}

// halt stops the loop and blocks until it has exited; idempotent.
func (x *Exchange) halt() {
	x.mu.Lock()
	if !x.stopped {
		x.stopped = true
		close(x.stop)
	}
	x.mu.Unlock()
	<-x.done
}

// Stats snapshots the loop's counters (the offer-serving and urgent
// counters live on the Gossip mechanism; Gossip.ExchangeStats merges
// them in).
func (x *Exchange) Stats() core.ExchangeStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.stats
}

// Scheduler exposes the partner scheduler for harnesses and the
// federation stats surface. Treat as read-mostly: driving it directly
// while the loop runs will interleave with the loop's own updates.
func (x *Exchange) Scheduler() *Scheduler { return x.sched }

// Role returns the loop's federation tier.
func (x *Exchange) Role() core.ExchangeRole { return x.role }

// persistSched writes the scheduler's state to statePath atomically
// (temp + rename). Failures are silent-but-bounded: the state is pure
// optimization, and the next successful round retries the write.
func (x *Exchange) persistSched() {
	if x.statePath == "" {
		return
	}
	data := x.sched.EncodeState()
	tmp := x.statePath + ".tmp"
	if err := os.MkdirAll(filepath.Dir(x.statePath), 0o755); err != nil {
		return
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, x.statePath)
}

// Step runs one exchange round against the scheduler's best-scoring
// peer: push our signed extracts, pull the peer's delta, verify and
// merge it. Exported so tests and the convergence bench can drive
// rounds deterministically instead of waiting out the interval; the
// background loop calls it on every tick. With an empty partner pool
// (a sole aggregator) the round is a no-op.
func (x *Exchange) Step(ctx context.Context) error {
	now := x.now()
	peer := x.sched.Pick(now)
	if peer == "" {
		return nil
	}
	received, merged, err := x.exchangeWith(ctx, peer)
	if err == nil {
		// Distance signal: how many entries the peer held that we
		// lacked. A peer we are fully synced with scores toward plain
		// staleness; a divergent one is revisited sooner.
		x.sched.NoteSuccess(peer, x.now(), float64(received))
	} else {
		x.sched.NoteFailure(peer)
	}
	x.persistSched()
	x.mu.Lock()
	x.stats.Rounds++
	x.stats.LastPeer = peer
	x.stats.LastUnixNano = x.now().UnixNano()
	if err != nil {
		x.stats.Failures++
	}
	x.mu.Unlock()
	fails := x.sched.Fails(peer)
	if bus := x.gossip.bus; bus != nil {
		ok := "true"
		if err != nil {
			ok = "false"
		}
		bus.Publish(events.Event{
			Kind: events.KindExchangeRound,
			Host: peer,
			Fields: map[string]string{
				"ok":     ok,
				"merged": strconv.FormatInt(int64(merged), 10),
			},
		})
		if err != nil {
			capped := fails
			if capped > failPenaltyCap {
				capped = failPenaltyCap
			}
			bus.Publish(events.Event{
				Kind: events.KindPeerCooldown,
				Host: peer,
				Fields: map[string]string{
					"fails":   strconv.Itoa(fails),
					"penalty": fmt.Sprintf("2^-%d", capped),
				},
			})
		}
	}
	return err
}

// exchangeWith performs the offer/delta round trip with one peer,
// returning how many delta entries the peer sent and how many merged.
func (x *Exchange) exchangeWith(ctx context.Context, peer string) (received, merged int, err error) {
	ctx, cancel := context.WithTimeout(ctx, exchangeCallTimeout)
	defer cancel()

	// One ledger snapshot serves the whole round: the push half (our
	// extracts, budget-capped) and the summary, which covers a wider
	// slice than we push so the peer can skip anything we already know
	// at least as well.
	snap := x.gossip.ledger.Snapshot(0)
	push := x.gossip.extracts(snap, x.self, x.hc.Host.Keys(), x.budget, nil)
	summaryLimit := 4 * x.budget
	if summaryLimit > maxSummaryEntries {
		summaryLimit = maxSummaryEntries
	}
	var summary []summaryItem
	size := 0
	for _, rep := range snap {
		if len(summary) >= summaryLimit {
			break
		}
		if len(rep.Host) > maxPrincipalLen {
			// Unencodable name: skip it (as extract selection does)
			// rather than fail the round.
			continue
		}
		size += summaryItemWireSize(rep.Host)
		if size > maxSummaryWireBytes {
			break
		}
		summary = append(summary, summaryItem{Host: rep.Host, Suspicion: rep.Suspicion})
	}
	body, err := encodeOffer(x.self, x.budget, summary, push)
	if err != nil {
		return 0, 0, fmt.Errorf("policy: exchange at %s: %w", x.self, err)
	}
	reply, err := x.hc.Net.Call(ctx, peer, GossipMechanismName+"/offer", body)
	if err != nil {
		return 0, 0, fmt.Errorf("policy: exchange %s->%s: %w", x.self, peer, err)
	}
	// The reply may still carry an urgent envelope when the loop's
	// network is the raw transport (harness-driven exchanges outside a
	// node); inside a node the urgent-aware wrapper has already opened
	// and merged it, and this unwrap is a no-op.
	payload, baggage := transport.OpenReply(reply)
	if len(baggage) > 0 {
		x.gossip.MergeUrgentBaggage(x.hc, baggage)
	}
	delta, err := decodeDelta(payload)
	if err != nil {
		return 0, 0, fmt.Errorf("policy: exchange %s->%s: %w", x.self, peer, err)
	}
	kept := x.gossip.mergeVerified(x.hc.Host.Registry(), x.self, delta)
	x.mu.Lock()
	x.stats.EntriesSent += int64(len(push))
	x.stats.EntriesReceived += int64(len(delta))
	x.stats.EntriesMerged += int64(len(kept))
	x.mu.Unlock()
	return len(delta), len(kept), nil
}

// floatBits / floatFromBits keep the summary's float encoding in one
// place (IEEE-754 big-endian bits, like every float on this wire).
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }

// --- Gossip's exchange surface -------------------------------------

// HandleCall implements core.CallHandler: "offer" answers one
// anti-entropy round. The pushed extracts pass through the same
// verify-then-Merge as baggage gossip; the reply carries this host's
// own signed extracts for every ledger entry the initiator's summary
// shows it is missing (or knows weaker than damping could improve).
func (m *Gossip) HandleCall(_ context.Context, hc *core.HostContext, method string, body []byte) ([]byte, error) {
	if method != "offer" {
		return nil, fmt.Errorf("%w: %s/%s", transport.ErrUnknownMethod, GossipMechanismName, method)
	}
	initiator, budget, summary, pushed, err := decodeOffer(body)
	if err != nil {
		return nil, err
	}
	self := hc.Host.Name()
	m.mergeVerified(hc.Host.Registry(), self, pushed)
	delta := m.extracts(m.ledger.Snapshot(0), self, hc.Host.Keys(), budget, func(rep core.HostReputation) bool {
		have, known := summary[rep.Host]
		// Useless to send: after damping the initiator's merge could
		// not raise what it already has.
		return known && rep.Suspicion*gossipDamping <= have+1e-9
	})
	m.exMu.Lock()
	m.offersServed++
	x := m.exchange
	m.exMu.Unlock()
	if x != nil && initiator != "" {
		// The delta size is also how far the initiator's ledger sat
		// from ours — fold it into our own scheduler's estimate for
		// that peer (a no-op when the initiator is not in our pool).
		x.sched.ObserveSummary(initiator, float64(len(delta)))
	}
	return encodeDelta(delta)
}

// StartExchange implements core.Exchanger: the node starts the loop at
// construction and stops it at Close. A Gossip instance runs at most
// one loop (mechanism instances are per-node).
func (m *Gossip) StartExchange(ctx context.Context, hc *core.HostContext, cfg core.ExchangeConfig) (func(), error) {
	x, err := newExchange(m, hc, cfg)
	if err != nil {
		return nil, err
	}
	m.exMu.Lock()
	if m.exchange != nil {
		m.exMu.Unlock()
		return nil, errors.New("policy: exchange already started for this gossip mechanism")
	}
	m.exchange = x
	m.exMu.Unlock()
	go x.run(ctx)
	return x.halt, nil
}

// Exchange returns the running anti-entropy loop, or nil when the node
// runs gossip-in-baggage only. The convergence bench uses it to drive
// rounds deterministically.
func (m *Gossip) Exchange() *Exchange {
	m.exMu.Lock()
	defer m.exMu.Unlock()
	return m.exchange
}

// UpdateExchangePeers implements core.ExchangePeerUpdater: the running
// loop adopts a new fleet membership without a node restart. Errors
// when no loop is running (gossip-in-baggage only) or when the new
// list leaves the node's tier without usable partners.
func (m *Gossip) UpdateExchangePeers(peers []string) error {
	m.exMu.Lock()
	x := m.exchange
	m.exMu.Unlock()
	if x == nil {
		return errors.New("policy: no exchange loop running for this gossip mechanism")
	}
	return x.UpdatePeers(peers)
}

var _ core.ExchangePeerUpdater = (*Gossip)(nil)

// ExchangeStats implements core.ExchangeReporter.
func (m *Gossip) ExchangeStats() (core.ExchangeStats, bool) {
	m.exMu.Lock()
	x := m.exchange
	served := m.offersServed
	urgentSent := m.urgentSent
	urgentMerged := m.urgentMerged
	m.exMu.Unlock()
	if x == nil {
		return core.ExchangeStats{
			OffersServed: served,
			UrgentSent:   urgentSent,
			UrgentMerged: urgentMerged,
		}, false
	}
	st := x.Stats()
	st.OffersServed = served
	st.UrgentSent = urgentSent
	st.UrgentMerged = urgentMerged
	return st, true
}

// Close stops the exchange loop, if one is running; io.Closer so
// protection.Stack.Close tears the loop down with the rest of the
// stack. Safe to call alongside (or after) the owning node's Close.
func (m *Gossip) Close() error {
	m.exMu.Lock()
	x := m.exchange
	m.exMu.Unlock()
	if x != nil {
		x.halt()
	}
	return nil
}
