package policy

import (
	"repro/internal/core"
)

// Urgent-extract piggybacking: the policy half. The node's transport
// plumbing (core.UrgentProvider / core.UrgentMerger) gives every
// mechanism-namespace reply an optional baggage slot; this file decides
// what rides in it — signed ledger extracts at or above the quarantine
// threshold — and how arriving baggage is ingested: through the very
// same verify-then-Merge as baggage gossip and exchange deltas, so the
// one-RPC fast path gets no new trust surface. Damping, the merge cap,
// and decayed-max idempotence all apply unchanged; replaying an urgent
// reply is as harmless as replaying gossip.

const (
	// maxUrgentEntries bounds the extracts one reply may carry: urgent
	// baggage is a fast path for the worst offenders, not a second
	// exchange channel — the anti-entropy loop moves the long tail.
	maxUrgentEntries = 8
)

var (
	_ core.UrgentProvider = (*Gossip)(nil)
	_ core.UrgentMerger   = (*Gossip)(nil)
)

// SetUrgentThreshold enables urgent piggybacking for ledger entries at
// or above threshold — deployments wire the quarantine threshold here
// (protection.Assemble does). Call before the node starts, like
// SetClock; non-positive leaves it disabled.
func (m *Gossip) SetUrgentThreshold(threshold float64) {
	if threshold > 0 {
		m.urgentAt = threshold
	}
}

// UrgentReplyBaggage implements core.UrgentProvider: the encoded,
// signed extracts currently at or above the urgent threshold, capped
// at maxUrgentEntries, or nil when nothing qualifies. Called on every
// served mechanism call, so the encoded form is cached per ledger
// version: the common nothing-changed case is one atomic load and one
// mutex hop, not a snapshot.
func (m *Gossip) UrgentReplyBaggage(hc *core.HostContext) []byte {
	if m.urgentAt <= 0 || hc == nil || hc.Host == nil {
		return nil
	}
	ver := m.ledger.Version()
	m.urgMu.Lock()
	if m.urgCacheSet && m.urgCacheVer == ver {
		b := m.urgCache
		m.urgMu.Unlock()
		m.noteUrgentSent(b)
		return b
	}
	m.urgMu.Unlock()

	// Rebuild outside the lock: Snapshot sorts most-suspect-first, so
	// the threshold filter plus the entry cap selects the head. Decay
	// can only lower entries out of a cached set between versions —
	// over-sending a decayed entry is harmless (merge is a damped,
	// decayed max), under-sending never happens because raising updates
	// bump the version.
	self := hc.Host.Name()
	entries := m.extracts(m.ledger.Snapshot(0), self, hc.Host.Keys(), maxUrgentEntries,
		func(rep core.HostReputation) bool { return rep.Suspicion < m.urgentAt })
	var enc []byte
	if len(entries) > 0 {
		if b, err := encodeEntries(entries); err == nil {
			enc = b
		}
	}
	m.urgMu.Lock()
	m.urgCacheVer = ver
	m.urgCacheSet = true
	m.urgCache = enc
	m.urgMu.Unlock()
	m.noteUrgentSent(enc)
	return enc
}

// noteUrgentSent counts one wrapped reply (nil baggage is not sent).
func (m *Gossip) noteUrgentSent(b []byte) {
	if len(b) == 0 {
		return
	}
	m.exMu.Lock()
	m.urgentSent++
	m.exMu.Unlock()
}

// MergeUrgentBaggage implements core.UrgentMerger: decode under the
// gossip bounds, then the shared verify-then-Merge. Malformed baggage
// merges nothing — it is advisory second-hand evidence and never fails
// the carrying call.
func (m *Gossip) MergeUrgentBaggage(hc *core.HostContext, baggage []byte) int {
	if hc == nil || hc.Host == nil {
		return 0
	}
	entries, err := decodeEntriesBounded(baggage, maxGossipEntries)
	if err != nil {
		return 0
	}
	keep := m.mergeVerified(hc.Host.Registry(), hc.Host.Name(), entries)
	if len(keep) > 0 {
		m.exMu.Lock()
		m.urgentMerged += int64(len(keep))
		m.exMu.Unlock()
	}
	return len(keep)
}
