package policy

import (
	"testing"
	"time"

	"repro/internal/canon"
)

// TestSchedulerRoundRobinAtParity: with nothing separating the peers
// (frozen clock, no history), the scheduler degenerates to a
// deterministic rotation that visits every peer within len(peers)
// picks — the property the old shuffled ring gave convergence proofs.
func TestSchedulerRoundRobinAtParity(t *testing.T) {
	now := time.Now()
	peers := []string{"a", "b", "c", "d", "e"}
	s := NewScheduler("self", peers, now)
	seen := make(map[string]bool)
	for i := 0; i < len(peers); i++ {
		seen[s.Pick(now)] = true
	}
	if len(seen) != len(peers) {
		t.Fatalf("first %d picks visited %d distinct peers, want all %d", len(peers), len(seen), len(peers))
	}
	// And the rotation is replayable: a second scheduler over the same
	// inputs picks the identical sequence.
	s2 := NewScheduler("self", peers, now)
	s3 := NewScheduler("self", peers, now)
	for i := 0; i < 3*len(peers); i++ {
		if p2, p3 := s2.Pick(now), s3.Pick(now); p2 != p3 {
			t.Fatalf("pick %d diverged across identical schedulers: %s vs %s", i, p2, p3)
		}
	}
}

// TestSchedulerOrderVariesAcrossNodes: two nodes with identical state
// must not visit the fleet in the same order (synchronized rotations
// would keep exchanging with each other's already-synced partners).
func TestSchedulerOrderVariesAcrossNodes(t *testing.T) {
	now := time.Now()
	peers := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	first := NewScheduler("node-one", peers, now)
	second := NewScheduler("node-two", peers, now)
	same := true
	for i := 0; i < len(peers); i++ {
		if first.Pick(now) != second.Pick(now) {
			same = false
		}
	}
	if same {
		t.Fatal("two distinct nodes produced identical visit orders")
	}
}

// TestSchedulerPrefersStale: the peer longest without a successful
// round outranks recently synced ones.
func TestSchedulerPrefersStale(t *testing.T) {
	base := time.Now()
	s := NewScheduler("self", []string{"fresh", "stale"}, base)
	s.NoteSuccess("fresh", base.Add(50*time.Second), 0)
	s.NoteSuccess("stale", base.Add(10*time.Second), 0)
	if p := s.Pick(base.Add(60 * time.Second)); p != "stale" {
		t.Fatalf("picked %s, want the staler peer", p)
	}
}

// TestSchedulerPrefersDistance: at equal staleness, a peer whose view
// kept diverging from ours outranks one already in sync.
func TestSchedulerPrefersDistance(t *testing.T) {
	base := time.Now()
	s := NewScheduler("self", []string{"synced", "diverging"}, base)
	at := base.Add(10 * time.Second)
	s.NoteSuccess("synced", at, 0)
	s.NoteSuccess("diverging", at, 6)
	if p := s.Pick(base.Add(30 * time.Second)); p != "diverging" {
		t.Fatalf("picked %s, want the diverging peer", p)
	}
}

// TestSchedulerFailurePenaltyAndRecovery: failures halve the score per
// consecutive fail (capped), but the peer is deprioritized rather than
// skipped — once its staleness outgrows the capped penalty it is
// probed again, and one success clears the penalty entirely.
func TestSchedulerFailurePenaltyAndRecovery(t *testing.T) {
	base := time.Now()
	s := NewScheduler("self", []string{"healthy", "flaky"}, base)
	at := base.Add(time.Second)
	s.NoteSuccess("healthy", at, 1)
	s.NoteSuccess("flaky", at, 1)
	for i := 0; i < 10; i++ {
		s.NoteFailure("flaky")
	}
	// Equal staleness: the penalized peer loses.
	if p := s.Pick(base.Add(30 * time.Second)); p != "healthy" {
		t.Fatalf("picked %s under fresh penalty, want healthy", p)
	}
	// The penalty caps at 2^-failPenaltyCap = 1/16: once the flaky
	// peer's staleness exceeds the healthy peer's by that factor, it is
	// probed again rather than starved forever.
	s.NoteSuccess("healthy", base.Add(2000*time.Second), 1)
	if p := s.Pick(base.Add(2100 * time.Second)); p != "flaky" {
		t.Fatalf("picked %s, want the long-unprobed flaky peer back in rotation", p)
	}
	s.NoteSuccess("flaky", base.Add(2100*time.Second), 1)
	if got := s.Fails("flaky"); got != 0 {
		t.Fatalf("success left %d fails on record, want 0", got)
	}
}

// TestSchedulerUpdatePeersKeepsState: membership updates preserve the
// surviving peers' failure memory — a dead peer does not earn a fresh
// probe budget because an unrelated node joined — and drop departed
// peers entirely.
func TestSchedulerUpdatePeersKeepsState(t *testing.T) {
	base := time.Now()
	s := NewScheduler("self", []string{"old", "dying"}, base)
	s.NoteFailure("dying")
	s.NoteFailure("dying")
	s.UpdatePeers([]string{"old", "dying", "joiner", "self"})
	if s.Len() != 3 {
		t.Fatalf("tracked %d peers after update, want 3 (self excluded)", s.Len())
	}
	if got := s.Fails("dying"); got != 2 {
		t.Fatalf("membership update reset fails to %d, want 2", got)
	}
	s.UpdatePeers([]string{"joiner"})
	if got := s.Fails("dying"); got != 0 {
		t.Fatalf("departed peer still tracked with %d fails", got)
	}
}

// TestSchedulerStateRoundTrip: EncodeState/ApplyState carry the
// restart memory — failure counts, last-success staleness, distance —
// and a torn file is rejected whole without disturbing live state.
func TestSchedulerStateRoundTrip(t *testing.T) {
	base := time.Now()
	s := NewScheduler("self", []string{"a", "b"}, base)
	s.NoteSuccess("a", base.Add(5*time.Second), 3)
	s.NoteFailure("b")
	s.NoteFailure("b")
	enc := s.EncodeState()

	fresh := NewScheduler("self", []string{"a", "b", "c"}, base.Add(time.Hour))
	if err := fresh.ApplyState(enc); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Fails("b"); got != 2 {
		t.Fatalf("restored fails = %d, want 2", got)
	}
	snap := fresh.Snapshot(base.Add(time.Hour))
	byName := make(map[string]PeerScore, len(snap))
	for _, ps := range snap {
		byName[ps.Peer] = ps
	}
	if byName["a"].LastSuccessUnixNano != base.Add(5*time.Second).UnixNano() {
		t.Fatalf("restored last-success = %d, want the persisted instant", byName["a"].LastSuccessUnixNano)
	}
	if byName["a"].Distance == schedDefaultDistance {
		t.Fatal("restored distance still at the prior; EWMA state lost")
	}
	if byName["c"].Distance != schedDefaultDistance {
		t.Fatalf("unknown peer c picked up foreign state (distance %.3f)", byName["c"].Distance)
	}

	untouched := NewScheduler("self", []string{"a", "b"}, base)
	if err := untouched.ApplyState(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated state applied without error")
	}
	if err := untouched.ApplyState(canon.Tuple([]byte("not-sched-state"))); err == nil {
		t.Fatal("mislabeled state applied without error")
	}
	if got := untouched.Fails("b"); got != 0 {
		t.Fatalf("rejected state still mutated the scheduler (fails=%d)", got)
	}
}
