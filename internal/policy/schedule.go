package policy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/canon"
)

// Scheduler is the exchange's weighted partner selector. The flat
// randomized ring visited peers uniformly — a peer just exchanged with
// had the same claim on the next round as one not seen for an hour, and
// a crashed peer consumed whole ring turns from a skip-list. The
// scheduler replaces both with one score per peer:
//
//	score = staleness × (1 + distance) × 2^-min(fails, failPenaltyCap)
//
// Staleness is the time since the last successful round with the peer
// (never-visited peers measure from the scheduler's creation), distance
// is an EWMA of how much the peer's ledger has differed from ours in
// past rounds (delta entries received, or the divergence its offers
// showed), and the failure term folds the old cooldown in as a penalty
// instead of a skip — a failing peer is deprioritized, not forgotten,
// and recovers attention as its staleness grows past the penalty.
//
// Ties (the all-zero start, or a frozen test clock) fall back to
// least-recently-picked order, then to a per-node FNV hash of the pair
// — so a fresh fleet still degenerates to a deterministic round-robin
// whose visit order differs across nodes, preserving the property the
// shuffled ring gave convergence proofs: every peer is picked within
// len(peers) rounds when nothing else separates them.
//
// All methods are safe for concurrent use. The scheduler is
// deliberately free of RNG and wall-clock reads: campaign and scale
// harnesses drive it with their own clocks and get replayable schedules.
const (
	// failPenaltyCap caps the failure exponent: a persistently failing
	// peer scores 2^-4 = 1/16 of a healthy one, so it is re-probed once
	// its staleness is ~16 healthy rounds — the same horizon the old
	// skip-list's maxPeerCooldownRounds gave, without burning turns.
	failPenaltyCap = 4
	// schedDistanceEWMA weighs the newest distance observation against
	// history; 0.5 follows a moving peer within a couple of rounds.
	schedDistanceEWMA = 0.5
	// schedDefaultDistance is the optimistic prior for a peer never
	// exchanged with: assumed to differ, so unknown peers are probed
	// ahead of known-synced ones at equal staleness.
	schedDefaultDistance = 1.0
)

// schedPeer is one peer's selection state.
type schedPeer struct {
	// lastSuccess is the last successful round; zero means never (the
	// scheduler's epoch anchors staleness then).
	lastSuccess time.Time
	// fails counts consecutive failed rounds since the last success.
	fails int
	// distance is the EWMA of observed ledger divergence.
	distance float64
	// pickedSeq is the global sequence number of the peer's last Pick;
	// 0 means never picked. Lower wins ties — least-recently-picked.
	pickedSeq uint64
}

// Scheduler scores and picks exchange partners. Construct with
// NewScheduler; the exchange loop owns one, and harnesses may drive a
// standalone instance deterministically.
type Scheduler struct {
	self  string
	epoch time.Time

	mu    sync.Mutex
	peers map[string]*schedPeer
	seq   uint64
}

// PeerScore is one peer's scheduling snapshot, for stats and tests.
type PeerScore struct {
	Peer     string
	Score    float64
	Fails    int
	Distance float64
	// LastSuccessUnixNano is 0 for a peer never exchanged with.
	LastSuccessUnixNano int64
}

// NewScheduler builds a scheduler for self over the given peers
// (deduplicated; self excluded). epoch anchors the staleness of peers
// never exchanged with — pass the clock's current time at construction.
func NewScheduler(self string, peers []string, epoch time.Time) *Scheduler {
	s := &Scheduler{
		self:  self,
		epoch: epoch,
		peers: make(map[string]*schedPeer, len(peers)),
	}
	for _, p := range peers {
		if p == "" || p == self {
			continue
		}
		if _, dup := s.peers[p]; !dup {
			s.peers[p] = &schedPeer{distance: schedDefaultDistance}
		}
	}
	return s
}

// Len returns the number of tracked peers.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// pairHash is the deterministic final tie-break: a per-(self, peer)
// FNV-64a hash, so two nodes with identical state still visit their
// fleets in different orders (the role the seeded shuffle used to play).
func pairHash(self, peer string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(self))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(peer))
	return h.Sum64()
}

// score computes the peer's current score. Caller holds s.mu.
//
// Staleness is wall time since the last success plus the pick lag (how
// many Picks have happened since this peer's last). The lag term is
// what keeps the scheduler sane under a frozen or slow clock — all wall
// staleness zero — where it reduces the whole formula to weighted
// round-robin; under a real clock the interval-sized wall term
// dominates and lag is a tie-break-scale nudge.
func (s *Scheduler) score(st *schedPeer, now time.Time) float64 {
	ref := st.lastSuccess
	if ref.IsZero() {
		ref = s.epoch
	}
	staleness := now.Sub(ref).Seconds()
	if staleness < 0 {
		staleness = 0
	}
	// The +1 floor keeps a just-picked peer's score above zero: without
	// it a frozen clock alternates between the freshest peer (score 0)
	// and whichever penalized peer retains any score at all.
	staleness += float64(s.seq-st.pickedSeq) + 1
	// The distance factor is capped for scoring (the stored EWMA is
	// not): selection bias stays bounded, so no peer can be starved
	// longer than ~(1+cap)·2^failPenaltyCap rounds by a loud neighbor.
	const distanceScoreCap = 7
	d := st.distance
	if d > distanceScoreCap {
		d = distanceScoreCap
	}
	fails := st.fails
	if fails > failPenaltyCap {
		fails = failPenaltyCap
	}
	return staleness * (1 + d) * math.Exp2(-float64(fails))
}

// Pick returns the highest-scoring peer at now and records the pick
// (for least-recently-picked tie-breaking). Empty string when no peers
// are tracked — the caller's round is a no-op then.
func (s *Scheduler) Pick(now time.Time) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		best      string
		bestState *schedPeer
		bestScore float64
		bestHash  uint64
	)
	for p, st := range s.peers {
		sc := s.score(st, now)
		h := pairHash(s.self, p)
		better := false
		switch {
		case bestState == nil:
			better = true
		case sc != bestScore:
			better = sc > bestScore
		case st.pickedSeq != bestState.pickedSeq:
			better = st.pickedSeq < bestState.pickedSeq
		default:
			better = h < bestHash
		}
		if better {
			best, bestState, bestScore, bestHash = p, st, sc, h
		}
	}
	if bestState != nil {
		s.seq++
		bestState.pickedSeq = s.seq
	}
	return best
}

// NoteSuccess records a completed round with peer: the failure penalty
// clears, staleness resets to now, and the observed distance (how many
// delta entries the peer had that we lacked) folds into the EWMA.
func (s *Scheduler) NoteSuccess(peer string, now time.Time, distance float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.peers[peer]
	if st == nil {
		return
	}
	st.fails = 0
	st.lastSuccess = now
	st.distance = s.foldDistance(st.distance, distance)
}

// NoteFailure records a failed round with peer, deepening its penalty.
// It returns the new consecutive-failure count (for event reporting).
func (s *Scheduler) NoteFailure(peer string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.peers[peer]
	if st == nil {
		return 0
	}
	st.fails++
	return st.fails
}

// ObserveSummary folds a distance observation for peer into its EWMA
// without touching staleness — the responder side's signal, derived
// from how far an initiator's offered summary sat from our own ledger.
func (s *Scheduler) ObserveSummary(peer string, distance float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.peers[peer]
	if st == nil {
		return
	}
	st.distance = s.foldDistance(st.distance, distance)
}

// foldDistance applies the EWMA with clamping (non-negative, bounded by
// the largest delta a round can carry).
func (s *Scheduler) foldDistance(old, obs float64) float64 {
	if obs < 0 || math.IsNaN(obs) {
		obs = 0
	}
	const maxDistance = 1 << 10
	if obs > maxDistance {
		obs = maxDistance
	}
	return (1-schedDistanceEWMA)*old + schedDistanceEWMA*obs
}

// Fails returns peer's consecutive-failure count (0 if untracked).
func (s *Scheduler) Fails(peer string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.peers[peer]; st != nil {
		return st.fails
	}
	return 0
}

// UpdatePeers replaces the tracked peer set. State survives for peers
// present in both sets — a dead peer does not earn a fresh probe budget
// because an unrelated node joined — and new peers start at the
// optimistic prior.
func (s *Scheduler) UpdatePeers(peers []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(map[string]*schedPeer, len(peers))
	for _, p := range peers {
		if p == "" || p == s.self {
			continue
		}
		if _, dup := next[p]; dup {
			continue
		}
		if st := s.peers[p]; st != nil {
			next[p] = st
		} else {
			next[p] = &schedPeer{distance: schedDefaultDistance}
		}
	}
	s.peers = next
}

// Snapshot returns every tracked peer's scheduling state at now, best
// score first (score desc, then name asc for determinism).
func (s *Scheduler) Snapshot(now time.Time) []PeerScore {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PeerScore, 0, len(s.peers))
	for p, st := range s.peers {
		ps := PeerScore{
			Peer:     p,
			Score:    s.score(st, now),
			Fails:    st.fails,
			Distance: st.distance,
		}
		if !st.lastSuccess.IsZero() {
			ps.LastSuccessUnixNano = st.lastSuccess.UnixNano()
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// --- persistence ----------------------------------------------------

// The scheduler's per-peer state is the exchange's restart memory: the
// last-success timestamps re-derive staleness across a restart, and the
// persisted failure counts close the old bug where a node restart
// handed every long-dead peer a clean slate and let it burn rounds
// again immediately. The encoding is the usual bounded canon.Tuple.
const (
	schedStateWireLabel = "policy-exchange-sched"
	// maxSchedStatePeers bounds a decoded state file — far above any
	// real fleet, low enough that a corrupt length cannot balloon.
	maxSchedStatePeers = 1 << 16
)

// ErrSchedState is wrapped by rejections of persisted scheduler state.
var ErrSchedState = errors.New("policy: malformed scheduler state")

// EncodeState renders the scheduler's per-peer state for persistence.
// Peer order is sorted, so identical state encodes identically.
func (s *Scheduler) EncodeState() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.peers))
	for p := range s.peers {
		names = append(names, p)
	}
	sort.Strings(names)
	fields := make([][]byte, 0, 1+len(names))
	fields = append(fields, []byte(schedStateWireLabel))
	for _, p := range names {
		st := s.peers[p]
		var last uint64
		if !st.lastSuccess.IsZero() {
			last = uint64(st.lastSuccess.UnixNano())
		}
		fields = append(fields, canon.Tuple(
			[]byte(p),
			appendU64(last),
			appendU64(uint64(st.fails)),
			appendU64(math.Float64bits(st.distance)),
		))
	}
	return canon.Tuple(fields...)
}

// ApplyState restores persisted per-peer state for peers the scheduler
// currently tracks; state for peers no longer in the set is dropped.
// Malformed input is rejected whole — a torn state file costs the
// restart memory, never the scheduler.
func (s *Scheduler) ApplyState(data []byte) error {
	fields, err := canon.ParseTuple(data)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSchedState, err)
	}
	if len(fields) == 0 || string(fields[0]) != schedStateWireLabel {
		return fmt.Errorf("%w: missing label", ErrSchedState)
	}
	if len(fields)-1 > maxSchedStatePeers {
		return fmt.Errorf("%w: %d peers over %d", ErrSchedState, len(fields)-1, maxSchedStatePeers)
	}
	type restored struct {
		last     int64
		fails    int
		distance float64
	}
	parsed := make(map[string]restored, len(fields)-1)
	for _, f := range fields[1:] {
		item, err := canon.ParseTuple(f)
		if err != nil || len(item) != 4 || len(item[0]) > maxPrincipalLen ||
			len(item[1]) != 8 || len(item[2]) != 8 || len(item[3]) != 8 {
			return fmt.Errorf("%w: bad peer record", ErrSchedState)
		}
		d := math.Float64frombits(binary.BigEndian.Uint64(item[3]))
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			d = schedDefaultDistance
		}
		parsed[string(item[0])] = restored{
			last:     int64(binary.BigEndian.Uint64(item[1])),
			fails:    int(binary.BigEndian.Uint64(item[2])),
			distance: d,
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for p, st := range s.peers {
		r, ok := parsed[p]
		if !ok {
			continue
		}
		if r.last > 0 {
			st.lastSuccess = time.Unix(0, r.last)
		}
		if r.fails > 0 && r.fails < 1<<20 {
			st.fails = r.fails
		}
		st.distance = r.distance
	}
	return nil
}
