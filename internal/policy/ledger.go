// Package policy implements the verdict-policy and host-reputation
// layer: the paper treats a failed reference-state check as the start
// of a response — suspicion accumulates against a host and drives
// escalating consequences (audit, quarantine, owner notification) —
// so this package fuses point detections into a continuous per-host
// picture and decides what each one costs the offender.
//
// The pieces:
//
//   - Ledger: a sharded, decay-weighted suspicion ledger per host.
//   - Reputation: a core.VerdictPolicy that feeds the ledger and maps
//     accumulated suspicion to quarantine / continue-flagged / notify.
//   - Gossip: a core.Mechanism that carries signed ledger extracts in
//     agent baggage, so one node's detection raises suspicion
//     deployment-wide without a separate protocol round.
//   - Gate: the adaptive-checking decision ("is this host's reputation
//     good enough to skip the expensive check?") consumed by
//     protection.LevelAdaptive via refproto's re-execution gate.
package policy

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/shardstore"
)

// Defaults for the ledger.
const (
	// DefaultHalfLife is the suspicion decay half-life: a failed check
	// stops mattering once enough clean time has passed.
	DefaultHalfLife = 5 * time.Minute
	// DefaultLedgerCapacity bounds tracked hosts; a flood of unknown
	// principal names cannot grow the ledger without bound.
	DefaultLedgerCapacity = 4096
	// DefaultFailureWeight is the suspicion added per failed check.
	DefaultFailureWeight = 1.0
	// gossipDamping scales suspicion adopted from gossip below the
	// observer's own value: second-hand evidence counts, but less, and
	// the damping makes circulating gossip a contraction instead of an
	// echo chamber.
	gossipDamping = 0.9
	// maxMergeSuspicion caps what a single gossiped claim can inject:
	// second-hand evidence can put a host under full scrutiny (well
	// above any escalation/quarantine threshold) but cannot defame it
	// to an astronomically high value that outlives decay for hours —
	// capped, a maximal claim decays below the default quarantine
	// threshold within two half-lives.
	maxMergeSuspicion = 8.0
)

// LedgerConfig parameterizes a Ledger.
type LedgerConfig struct {
	// HalfLife is the suspicion decay half-life; 0 means
	// DefaultHalfLife, negative disables decay.
	HalfLife time.Duration
	// Capacity bounds tracked hosts; 0 means DefaultLedgerCapacity.
	Capacity int
	// FailureWeight is the suspicion added per failed check; 0 means
	// DefaultFailureWeight.
	FailureWeight float64
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// Backend makes the ledger durable: every observation is appended
	// to it and the per-host records are replayed from it on open, so a
	// node's accumulated suspicion survives a restart instead of
	// handing repeat offenders a free reset. Only OpenLedger honours
	// it; the ledger owns the backend and closes it in Close. Nil keeps
	// the ledger in memory.
	Backend shardstore.Backend
	// OnPersistError is forwarded to the backing store's persistence
	// error hook (fires once, on the first write failure, after which
	// the store is degraded to memory-only). Nil means failures are
	// silent. Ignored without Backend.
	OnPersistError func(error)
	// Bus, when non-nil, receives an escalation event each time a
	// host's suspicion crosses EscalateAt upward — whether from a
	// first-hand observation or a gossip/exchange merge. The crossing,
	// not the level, is the event: a host parked above the threshold
	// publishes nothing until decay takes it below and new evidence
	// pushes it back over.
	Bus *events.Bus
	// EscalateAt is the crossing threshold the escalation event fires
	// at; 0 means DefaultEscalateThreshold. Deployments wire the
	// adaptive gate's threshold here so the event matches the moment
	// checking actually intensifies.
	EscalateAt float64
}

// hostRecord is one host's ledger entry. Suspicion is stored with its
// timestamp and decayed on read, so idle hosts cost nothing.
type hostRecord struct {
	suspicion float64
	updated   time.Time
	events    int
	failures  int
}

// Ledger is a sharded, decay-weighted per-host suspicion ledger. All
// methods are safe for concurrent use; hosts are striped over
// independently locked shards like every other hot-path store.
type Ledger struct {
	cfg   LedgerConfig
	store *shardstore.Store[hostRecord]
	// version counts suspicion-raising updates (failed observations and
	// adopted merges). Consumers caching derived views — the gossip
	// mechanism's urgent-extract baggage — rebuild when it moves; decay
	// never bumps it (decay only lowers values, and the caches it could
	// stale are advisory and idempotent to over-send).
	version atomic.Uint64
}

// Version returns the suspicion-raising update counter.
func (l *Ledger) Version() uint64 { return l.version.Load() }

// NewLedger builds an in-memory ledger. cfg.Backend must be nil (it
// panics otherwise, so a durability request is never silently dropped);
// use OpenLedger for a WAL-backed ledger.
func NewLedger(cfg LedgerConfig) *Ledger {
	if cfg.Backend != nil {
		panic("policy: NewLedger cannot honour LedgerConfig.Backend; use OpenLedger")
	}
	l, err := OpenLedger(cfg)
	if err != nil {
		// Unreachable: errors only arise from backend replay.
		panic(err)
	}
	return l
}

// OpenLedger builds a ledger, replaying cfg.Backend (when set) so the
// per-host suspicion records of a previous run are back in memory
// before the first observation lands.
func OpenLedger(cfg LedgerConfig) (*Ledger, error) {
	if cfg.HalfLife == 0 {
		cfg.HalfLife = DefaultHalfLife
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultLedgerCapacity
	}
	if cfg.FailureWeight == 0 {
		cfg.FailureWeight = DefaultFailureWeight
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.EscalateAt == 0 {
		cfg.EscalateAt = DefaultEscalateThreshold
	}
	l := &Ledger{cfg: cfg}
	scfg := shardstore.Config[hostRecord]{Capacity: cfg.Capacity}
	if cfg.Backend == nil {
		l.store = shardstore.New[hostRecord](scfg)
		return l, nil
	}
	store, err := shardstore.NewPersistent(scfg, shardstore.PersistConfig[hostRecord]{
		Backend: cfg.Backend,
		Codec:   hostRecordCodec(),
		OnError: cfg.OnPersistError,
	})
	if err != nil {
		return nil, fmt.Errorf("policy: recovering ledger: %w", err)
	}
	l.store = store
	return l, nil
}

// hostRecordWireLabel versions the persisted host record format.
const hostRecordWireLabel = "host-record"

// hostRecordCodec persists one host's suspicion record. The float is
// stored as its exact IEEE-754 bits, so a recovered ledger reports
// bit-identical suspicion (before decay for the downtime, which Merge
// and Suspicion apply from the stored timestamp as usual — downtime
// counts as clean time).
func hostRecordCodec() shardstore.Codec[hostRecord] {
	return shardstore.Codec[hostRecord]{
		Encode: func(r hostRecord) ([]byte, error) {
			var buf [4][8]byte
			binary.BigEndian.PutUint64(buf[0][:], math.Float64bits(r.suspicion))
			binary.BigEndian.PutUint64(buf[1][:], uint64(r.updated.UnixNano()))
			binary.BigEndian.PutUint64(buf[2][:], uint64(r.events))
			binary.BigEndian.PutUint64(buf[3][:], uint64(r.failures))
			return canon.Tuple([]byte(hostRecordWireLabel), buf[0][:], buf[1][:], buf[2][:], buf[3][:]), nil
		},
		Decode: func(b []byte) (hostRecord, error) {
			fields, err := canon.ParseTuple(b)
			if err != nil {
				return hostRecord{}, fmt.Errorf("policy: decoding host record: %w", err)
			}
			if len(fields) != 5 || string(fields[0]) != hostRecordWireLabel {
				return hostRecord{}, fmt.Errorf("policy: decoding host record: %w", canon.ErrMalformed)
			}
			for _, f := range fields[1:] {
				if len(f) != 8 {
					return hostRecord{}, fmt.Errorf("policy: decoding host record: %w", canon.ErrMalformed)
				}
			}
			return hostRecord{
				suspicion: math.Float64frombits(binary.BigEndian.Uint64(fields[1])),
				updated:   time.Unix(0, int64(binary.BigEndian.Uint64(fields[2]))),
				events:    int(binary.BigEndian.Uint64(fields[3])),
				failures:  int(binary.BigEndian.Uint64(fields[4])),
			}, nil
		},
	}
}

// Close flushes and closes the ledger's backend; a no-op (and nil) for
// in-memory ledgers.
func (l *Ledger) Close() error { return l.store.Close() }

// decayed returns r's suspicion decayed from its timestamp to now.
func (l *Ledger) decayed(r hostRecord, now time.Time) float64 {
	if l.cfg.HalfLife < 0 || r.suspicion == 0 {
		return r.suspicion
	}
	dt := now.Sub(r.updated)
	if dt <= 0 {
		return r.suspicion
	}
	return r.suspicion * math.Exp2(-float64(dt)/float64(l.cfg.HalfLife))
}

// Observe records one first-hand check outcome against host. Failed
// checks add weight (LedgerConfig.FailureWeight when weight is 0); OK
// checks count as events and let decay do the forgiving.
func (l *Ledger) Observe(host string, ok bool, weight float64) float64 {
	if host == "" {
		return 0
	}
	if weight == 0 {
		weight = l.cfg.FailureWeight
	}
	now := l.cfg.Now()
	var before float64
	rec := l.store.Upsert(host, func(old hostRecord, existed bool) hostRecord {
		s := l.decayed(old, now)
		before = s
		if !ok {
			s += weight
			old.failures++
		}
		old.suspicion = s
		old.updated = now
		old.events++
		return old
	})
	if !ok {
		l.version.Add(1)
	}
	l.noteCrossing(host, before, rec.suspicion)
	return rec.suspicion
}

// Merge folds a second-hand (gossiped) suspicion value for host into
// the ledger: the remote value is decayed from its observation time,
// damped, and adopted only if it exceeds the local value. Max-merge is
// idempotent, so replayed gossip is harmless, and damping makes
// re-circulated gossip decay rather than amplify.
func (l *Ledger) Merge(host string, suspicion float64, at time.Time) {
	if host == "" || suspicion <= 0 || math.IsNaN(suspicion) || math.IsInf(suspicion, 0) {
		return
	}
	now := l.cfg.Now()
	// A future-dated observation gets no decay head start; it reads as
	// "just now".
	remote := math.Min(suspicion, maxMergeSuspicion)
	if l.cfg.HalfLife > 0 {
		if dt := now.Sub(at); dt > 0 {
			remote *= math.Exp2(-float64(dt) / float64(l.cfg.HalfLife))
		}
	}
	remote *= gossipDamping
	if remote <= 0 {
		return
	}
	var before, after float64
	l.store.Upsert(host, func(old hostRecord, existed bool) hostRecord {
		local := l.decayed(old, now)
		before = local
		if remote > local {
			old.suspicion = remote
			old.updated = now
		} else {
			old.suspicion = local
			old.updated = now
		}
		after = old.suspicion
		return old
	})
	if after > before {
		l.version.Add(1)
	}
	l.noteCrossing(host, before, after)
}

// noteCrossing publishes an escalation event when suspicion crossed
// the escalation threshold upward.
func (l *Ledger) noteCrossing(host string, before, after float64) {
	if l.cfg.Bus == nil || before >= l.cfg.EscalateAt || after < l.cfg.EscalateAt {
		return
	}
	l.cfg.Bus.Publish(events.Event{
		Kind:   events.KindEscalation,
		Host:   host,
		Fields: map[string]string{"suspicion": fmt.Sprintf("%.3f", after)},
	})
}

// Suspicion returns host's current (decayed) suspicion; 0 for unknown
// hosts.
func (l *Ledger) Suspicion(host string) float64 {
	rec, ok := l.store.Get(host)
	if !ok {
		return 0
	}
	return l.decayed(rec, l.cfg.Now())
}

// Report returns the core.HostReputation snapshot for host.
func (l *Ledger) Report(host string) (core.HostReputation, bool) {
	rec, ok := l.store.Get(host)
	if !ok {
		return core.HostReputation{}, false
	}
	return core.HostReputation{
		Host:            host,
		Suspicion:       l.decayed(rec, l.cfg.Now()),
		Events:          rec.events,
		Failures:        rec.failures,
		UpdatedUnixNano: rec.updated.UnixNano(),
	}, true
}

// Snapshot returns every tracked host's reputation, most suspect
// first, capped at limit (0 means all).
func (l *Ledger) Snapshot(limit int) []core.HostReputation {
	now := l.cfg.Now()
	var out []core.HostReputation
	l.store.Range(func(host string, rec hostRecord) bool {
		out = append(out, core.HostReputation{
			Host:            host,
			Suspicion:       l.decayed(rec, now),
			Events:          rec.events,
			Failures:        rec.failures,
			UpdatedUnixNano: rec.updated.UnixNano(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suspicion != out[j].Suspicion {
			return out[i].Suspicion > out[j].Suspicion
		}
		return out[i].Host < out[j].Host
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
