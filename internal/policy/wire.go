package policy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/canon"
)

// The gossip wire codec: GossipEntry lists move between hosts in agent
// baggage and in the anti-entropy exchange protocol, always over
// attacker-controllable transports. The encoding is the repo's bounded
// canon.Tuple format (PR 1's wire policy) instead of gob: every length
// is framed, the total byte size and the entry count are checked
// *before* anything is allocated proportionally to the declared
// content, and a malformed or oversized message is rejected with a
// typed error instead of a large speculative allocation.
//
// Layout (all framing canon.Tuple):
//
//	entries := Tuple(entriesWireLabel, entry, entry, ...)
//	entry   := Tuple(observer, host, suspicionBits8, atUnixNano8,
//	                 sigSigner, sigBytes)
const (
	// entriesWireLabel versions the entry-list framing.
	entriesWireLabel = "policy-gossip-entries"
	// entryFieldCount is the per-entry tuple arity.
	entryFieldCount = 6

	// MaxGossipWireBytes bounds any encoded entry list accepted off the
	// wire (baggage or exchange); a message beyond it is rejected
	// before parsing. Senders never construct an over-bound list:
	// extract selection stops at the byte budget (entryWireSize), so a
	// large fleet with long principal names trades fewer entries per
	// round rather than failing the round.
	MaxGossipWireBytes = 64 * 1024
	// maxPrincipalLen bounds each principal name carried in an entry;
	// real host names are tens of bytes.
	maxPrincipalLen = 256
	// maxSigLen bounds the signature field (Ed25519 signatures are 64
	// bytes; the slack tolerates future schemes without unbounding).
	maxSigLen = 128
)

// ErrGossipWire is wrapped by every rejection of the gossip wire codec
// (oversized input, too many entries, malformed framing).
var ErrGossipWire = errors.New("policy: malformed gossip wire data")

// appendU64 encodes v big-endian into a fresh 8-byte slice.
func appendU64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// tupleWireSize returns the encoded size of a canon.Tuple whose fields
// have the given lengths: the version byte, tuple tag, and 4-byte
// count, then a 4-byte length prefix per field. This is the single
// place the framing arithmetic lives — every sender-side size estimate
// below derives from it, so it must stay in lockstep with
// canon.AppendTuple (pinned by the codec round-trip tests).
func tupleWireSize(fieldLens ...int) int {
	n := 1 + 1 + 4
	for _, l := range fieldLens {
		n += 4 + l
	}
	return n
}

// entriesWireHeader is the fixed overhead of an encoded entry list
// (outer tuple framing plus the label field).
var entriesWireHeader = tupleWireSize(len(entriesWireLabel))

// entryWireSize is the exact encoded size one entry contributes to an
// entry-list message: its own tuple framing plus the outer list's
// length prefix for it. Senders use it to stop adding entries before a
// list would exceed MaxGossipWireBytes.
func entryWireSize(e *GossipEntry) int {
	return 4 + tupleWireSize(len(e.Observer), len(e.Host), 8, 8, len(e.Sig.Signer), len(e.Sig.Sig))
}

// summaryItemWireSize is the encoded size one (host, suspicion) pair
// contributes to an offer's ledger summary.
func summaryItemWireSize(host string) int {
	return 4 + tupleWireSize(len(host), 8)
}

// encodeEntries renders entries in the bounded tuple format. The
// encoder enforces the same per-field bounds as the decoder so a host
// can never emit a message its peers are required to reject.
func encodeEntries(entries []GossipEntry) ([]byte, error) {
	fields := make([][]byte, 0, 1+len(entries))
	fields = append(fields, []byte(entriesWireLabel))
	for i := range entries {
		e := &entries[i]
		if len(e.Observer) > maxPrincipalLen || len(e.Host) > maxPrincipalLen ||
			len(e.Sig.Signer) > maxPrincipalLen || len(e.Sig.Sig) > maxSigLen {
			return nil, fmt.Errorf("%w: entry %d field over bound", ErrGossipWire, i)
		}
		fields = append(fields, canon.Tuple(
			[]byte(e.Observer),
			[]byte(e.Host),
			appendU64(math.Float64bits(e.Suspicion)),
			appendU64(uint64(e.AtUnixNano)),
			[]byte(e.Sig.Signer),
			e.Sig.Sig,
		))
	}
	out := canon.Tuple(fields...)
	if len(out) > MaxGossipWireBytes {
		return nil, fmt.Errorf("%w: %d encoded bytes over %d", ErrGossipWire, len(out), MaxGossipWireBytes)
	}
	return out, nil
}

// decodeEntriesBounded parses a bounded entry list. maxEntries caps the
// accepted count; the byte bound is checked before any parsing, so a
// hostile message cannot force allocation beyond its own (bounded)
// length. Semantic filtering (signature verification, self-reports,
// non-finite suspicion) is the caller's job — this is framing only.
func decodeEntriesBounded(data []byte, maxEntries int) ([]GossipEntry, error) {
	if len(data) > MaxGossipWireBytes {
		return nil, fmt.Errorf("%w: %d bytes over %d", ErrGossipWire, len(data), MaxGossipWireBytes)
	}
	fields, err := canon.ParseTuple(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrGossipWire, err)
	}
	if len(fields) == 0 || string(fields[0]) != entriesWireLabel {
		return nil, fmt.Errorf("%w: missing label", ErrGossipWire)
	}
	if n := len(fields) - 1; n > maxEntries {
		return nil, fmt.Errorf("%w: %d entries over %d", ErrGossipWire, n, maxEntries)
	}
	entries := make([]GossipEntry, 0, len(fields)-1)
	for _, f := range fields[1:] {
		e, err := decodeEntry(f)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// decodeEntry parses one entry tuple, enforcing per-field bounds.
func decodeEntry(b []byte) (GossipEntry, error) {
	fields, err := canon.ParseTuple(b)
	if err != nil {
		return GossipEntry{}, fmt.Errorf("%w: entry: %v", ErrGossipWire, err)
	}
	if len(fields) != entryFieldCount {
		return GossipEntry{}, fmt.Errorf("%w: entry has %d fields, want %d", ErrGossipWire, len(fields), entryFieldCount)
	}
	if len(fields[0]) > maxPrincipalLen || len(fields[1]) > maxPrincipalLen ||
		len(fields[4]) > maxPrincipalLen || len(fields[5]) > maxSigLen {
		return GossipEntry{}, fmt.Errorf("%w: entry field over bound", ErrGossipWire)
	}
	if len(fields[2]) != 8 || len(fields[3]) != 8 {
		return GossipEntry{}, fmt.Errorf("%w: bad fixed-width field", ErrGossipWire)
	}
	e := GossipEntry{
		Observer:   string(fields[0]),
		Host:       string(fields[1]),
		Suspicion:  math.Float64frombits(binary.BigEndian.Uint64(fields[2])),
		AtUnixNano: int64(binary.BigEndian.Uint64(fields[3])),
	}
	e.Sig.Signer = string(fields[4])
	e.Sig.Sig = append([]byte(nil), fields[5]...)
	return e, nil
}
