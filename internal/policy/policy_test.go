package policy

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

func testClock(start time.Time) (*time.Time, func() time.Time) {
	t := start
	return &t, func() time.Time { return t }
}

func TestLedgerDecay(t *testing.T) {
	clock, now := testClock(time.Unix(1000, 0))
	l := NewLedger(LedgerConfig{HalfLife: time.Minute, Now: now})
	l.Observe("mallory", false, 0)
	if got := l.Suspicion("mallory"); got != 1.0 {
		t.Fatalf("suspicion after one failure = %v, want 1", got)
	}
	*clock = clock.Add(time.Minute)
	if got := l.Suspicion("mallory"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("suspicion after one half-life = %v, want 0.5", got)
	}
	*clock = clock.Add(10 * time.Minute)
	if got := l.Suspicion("mallory"); got > 0.001 {
		t.Fatalf("suspicion after 11 half-lives = %v, want ~0", got)
	}
	// OK observations count events but add no suspicion.
	l.Observe("alice", true, 0)
	if got := l.Suspicion("alice"); got != 0 {
		t.Fatalf("suspicion after OK = %v, want 0", got)
	}
	rep, ok := l.Report("alice")
	if !ok || rep.Events != 1 || rep.Failures != 0 {
		t.Fatalf("report = %+v ok=%v, want 1 event 0 failures", rep, ok)
	}
}

func TestLedgerAccumulation(t *testing.T) {
	_, now := testClock(time.Unix(1000, 0))
	l := NewLedger(LedgerConfig{HalfLife: time.Minute, Now: now})
	for i := 0; i < 3; i++ {
		l.Observe("mallory", false, 0)
	}
	if got := l.Suspicion("mallory"); got != 3.0 {
		t.Fatalf("suspicion after three failures = %v, want 3", got)
	}
	rep, _ := l.Report("mallory")
	if rep.Failures != 3 || rep.Events != 3 {
		t.Fatalf("report = %+v, want 3/3", rep)
	}
}

func TestLedgerMergeDampsAndIsIdempotent(t *testing.T) {
	_, now := testClock(time.Unix(1000, 0))
	l := NewLedger(LedgerConfig{HalfLife: time.Minute, Now: now})
	at := time.Unix(1000, 0)
	l.Merge("mallory", 2.0, at)
	first := l.Suspicion("mallory")
	if math.Abs(first-1.8) > 1e-9 { // 2.0 * 0.9 damping
		t.Fatalf("merged suspicion = %v, want 1.8", first)
	}
	// Re-merging the same observation must not inflate.
	l.Merge("mallory", 2.0, at)
	if got := l.Suspicion("mallory"); got != first {
		t.Fatalf("re-merge changed suspicion %v -> %v", first, got)
	}
	// A lower remote value never reduces local knowledge.
	l.Merge("mallory", 0.5, at)
	if got := l.Suspicion("mallory"); got != first {
		t.Fatalf("lower merge reduced suspicion %v -> %v", first, got)
	}
	// Garbage is dropped.
	l.Merge("mallory", math.NaN(), at)
	l.Merge("mallory", math.Inf(1), at)
	l.Merge("", 3, at)
	if got := l.Suspicion("mallory"); got != first {
		t.Fatalf("garbage merge changed suspicion %v -> %v", first, got)
	}
}

func failedVerdict(suspect string) core.Verdict {
	return core.Verdict{
		Mechanism: "test", Moment: core.AfterSession,
		CheckedHost: suspect, Checker: "checker",
		OK: false, Suspect: suspect, Reason: "test failure",
	}
}

func TestReputationEscalation(t *testing.T) {
	_, now := testClock(time.Unix(1000, 0))
	led := NewLedger(LedgerConfig{HalfLife: time.Hour, Now: now})
	p := NewReputation(ReputationConfig{Ledger: led, QuarantineThreshold: 2.0})

	// First offense: lenient — flag + notify, no quarantine.
	d := p.Decide("ag", failedVerdict("mallory"))
	if d.Quarantine || !d.Flag || !d.NotifyOwner {
		t.Fatalf("first offense decision = %+v, want flag+notify", d)
	}
	// Second offense within the window crosses the threshold.
	d = p.Decide("ag", failedVerdict("mallory"))
	if !d.Quarantine || !d.NotifyOwner {
		t.Fatalf("second offense decision = %+v, want quarantine", d)
	}
	// OK verdicts produce no response but are recorded.
	ok := failedVerdict("alice")
	ok.OK = true
	if d := p.Decide("ag", ok); d != (core.Decision{}) {
		t.Fatalf("OK verdict decision = %+v, want zero", d)
	}
	rep, found := p.HostReputation("mallory")
	if !found || rep.Failures != 2 {
		t.Fatalf("reporter = %+v found=%v, want 2 failures", rep, found)
	}
}

func TestReputationFirstOffenseQuarantines(t *testing.T) {
	p := NewReputation(ReputationConfig{FirstOffenseQuarantines: true})
	if d := p.Decide("ag", failedVerdict("mallory")); !d.Quarantine {
		t.Fatalf("strict-mode decision = %+v, want quarantine", d)
	}
}

func TestGateEscalation(t *testing.T) {
	_, now := testClock(time.Unix(1000, 0))
	led := NewLedger(LedgerConfig{HalfLife: time.Hour, Now: now})
	g := NewGate(GateConfig{Ledger: led, EscalateThreshold: 0.5, AuditInterval: 4})

	// Clean host: only the baseline audit cadence (every 4th session).
	var audited []int
	for i := 1; i <= 8; i++ {
		if g.ShouldReExecute("clean") {
			audited = append(audited, i)
		}
	}
	if len(audited) != 2 || audited[0] != 4 || audited[1] != 8 {
		t.Fatalf("audited sessions %v, want [4 8]", audited)
	}
	// One failure pushes the host over the gate threshold: every
	// session is checked from then on.
	led.Observe("shady", false, 0)
	for i := 0; i < 3; i++ {
		if !g.ShouldReExecute("shady") {
			t.Fatal("suspect host's session not escalated")
		}
	}
	// AuditInterval < 0 disables the baseline cadence.
	g2 := NewGate(GateConfig{Ledger: led, AuditInterval: -1})
	for i := 0; i < 64; i++ {
		if g2.ShouldReExecute("clean") {
			t.Fatal("audit fired with cadence disabled")
		}
	}
}
