package policy

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestFederationConvergenceBound is the hierarchical federation's
// convergence-bound property: with two aggregators fronting a member
// fleet, a cheater seen first-hand by exactly one member escalates
// fleet-wide within member-round + aggregator-round + member-round —
// for every fleet size, every seeded member, and every step order
// inside a round. The mechanics behind the bound: the seeded member's
// round pushes the extract to one aggregator; the aggregator round is
// a two-party exchange, so whichever aggregator steps first levels
// both; the final member round has every member pulling from an
// informed aggregator whichever one it picks.
func TestFederationConvergenceBound(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 6; trial++ {
		members := 3 + rng.Intn(8) // 3..10 members
		n := 2 + members           // nodes 0,1 are the aggregators
		aggs := []string{exName(0), exName(1)}
		bed := newExBedCfg(t, n, func(i int) *core.ExchangeConfig {
			cfg := &core.ExchangeConfig{Aggregators: aggs, Role: core.ExchangeRoleMember}
			if i < 2 {
				cfg.Role = core.ExchangeRoleAggregator
			}
			return cfg
		}, nil)

		seeded := 2 + rng.Intn(members)
		bed.nodes[seeded].led.Observe("mallory", false, maxMergeSuspicion)

		stepRound := func(idx []int) {
			rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
			for _, i := range idx {
				if err := bed.nodes[i].x.Step(ctx); err != nil {
					t.Fatalf("trial %d: step of %s: %v", trial, bed.nodes[i].name, err)
				}
			}
		}
		memberIdx := make([]int, 0, members)
		for i := 2; i < n; i++ {
			memberIdx = append(memberIdx, i)
		}
		stepRound(memberIdx)   // seeded member reaches one aggregator
		stepRound([]int{0, 1}) // the aggregator pair levels
		stepRound(memberIdx)   // every member pulls from an informed aggregator

		for _, node := range bed.nodes {
			if s := node.led.Suspicion("mallory"); s < DefaultEscalateThreshold {
				t.Fatalf("trial %d (members=%d seeded=%s): %s below escalation after bounded rounds (%.3f)",
					trial, members, bed.nodes[seeded].name, node.name, s)
			}
		}
	}
}
