package policy

import (
	"fmt"

	"repro/internal/core"
)

// DefaultAdmissionThreshold is the suspicion at/above which admission
// control refuses deliveries from a host. It sits between the gate's
// escalation threshold (0.5 — check everything the host did) and the
// quarantine threshold (2.0 — stop the agent): one escalated-but-
// unconfirmed offense still gets its sessions checked, a confirmed
// offender is shed load before any of its agents are even queued.
const DefaultAdmissionThreshold = 1.0

// AdmissionConfig parameterizes the ledger-backed admission policy.
type AdmissionConfig struct {
	// Ledger is the suspicion source; share the node's stack ledger so
	// admission tracks the same evidence the gate and verdict policy
	// act on. Required.
	Ledger *Ledger
	// RefuseThreshold is the suspicion at/above which deliveries from a
	// host are refused; 0 means DefaultAdmissionThreshold.
	RefuseThreshold float64
}

// Admission is a core.AdmissionPolicy that refuses intake from hosts
// whose ledger suspicion is at or above the threshold — the verdict-
// free response: a flagged host is shed load before it is quarantined,
// and the refusal itself (ErrAdmissionRefused at the sender) is the
// routing signal that steers planners around it.
type Admission struct {
	ledger    *Ledger
	threshold float64
}

var (
	_ core.AdmissionPolicy      = (*Admission)(nil)
	_ core.AdmissionThresholder = (*Admission)(nil)
)

// NewAdmission builds the policy over the given ledger.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Ledger == nil {
		cfg.Ledger = NewLedger(LedgerConfig{})
	}
	if cfg.RefuseThreshold <= 0 {
		cfg.RefuseThreshold = DefaultAdmissionThreshold
	}
	return &Admission{ledger: cfg.Ledger, threshold: cfg.RefuseThreshold}
}

// Name implements core.AdmissionPolicy.
func (a *Admission) Name() string { return "ledger-admission" }

// AdmissionThreshold implements core.AdmissionThresholder.
func (a *Admission) AdmissionThreshold() float64 { return a.threshold }

// Admit implements core.AdmissionPolicy: read the sender's decayed
// suspicion and refuse at/above the threshold. Locally launched agents
// (empty sender) are always admitted.
func (a *Admission) Admit(fromHost string) core.AdmissionDecision {
	if fromHost == "" {
		return core.AdmissionDecision{Threshold: a.threshold}
	}
	s := a.ledger.Suspicion(fromHost)
	dec := core.AdmissionDecision{Suspicion: s, Threshold: a.threshold}
	if s >= a.threshold {
		dec.Refuse = true
		dec.Reason = fmt.Sprintf("suspicion %.3f >= admission threshold %.3f", s, a.threshold)
	}
	return dec
}
