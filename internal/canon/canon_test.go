package canon

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/value"
)

func randomValue(r *rand.Rand, depth int) value.Value {
	kinds := 4
	if depth > 0 {
		kinds = 6
	}
	switch r.Intn(kinds) {
	case 0:
		return value.Null()
	case 1:
		return value.Int(r.Int63() - r.Int63())
	case 2:
		buf := make([]byte, r.Intn(20))
		r.Read(buf)
		return value.Str(string(buf))
	case 3:
		return value.Bool(r.Intn(2) == 0)
	case 4:
		n := r.Intn(5)
		elems := make([]value.Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return value.List(elems...)
	default:
		n := r.Intn(5)
		m := make(map[string]value.Value, n)
		for i := 0; i < n; i++ {
			m[string(rune('a'+r.Intn(26)))] = randomValue(r, depth-1)
		}
		return value.Map(m)
	}
}

func TestValueRoundTrip(t *testing.T) {
	fixed := []value.Value{
		value.Null(),
		value.Int(0),
		value.Int(-1),
		value.Int(1<<62 + 12345),
		value.Str(""),
		value.Str("hello \x00 world"),
		value.Bool(true),
		value.Bool(false),
		value.List(),
		value.List(value.Int(1), value.Str("x"), value.List(value.Bool(true))),
		value.Map(nil),
		value.Map(map[string]value.Value{"k": value.Map(map[string]value.Value{"n": value.Null()})}),
	}
	for _, v := range fixed {
		enc := EncodeValue(v)
		got, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("DecodeValue(%s): %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip changed %s into %s", v, got)
		}
	}
}

func TestValueRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := randomValue(r, 3)
		got, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Fatalf("decode of %s: %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip changed %s into %s", v, got)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := value.State{
		"money":  value.Int(1000),
		"visits": value.List(value.Str("h1"), value.Str("h2")),
		"prices": value.Map(map[string]value.Value{"h1": value.Int(42)}),
	}
	got, err := DecodeState(EncodeState(s))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("state round trip mismatch: %v vs %v", got, s)
	}
}

func TestStateEncodingDeterministicAcrossMapOrder(t *testing.T) {
	// Build the same logical state many times; Go map iteration order is
	// randomized, so any order-dependence would show up as differing bytes.
	build := func() value.State {
		s := value.State{}
		for c := 'a'; c <= 'z'; c++ {
			s[string(c)] = value.Int(int64(c))
		}
		s["m"] = value.Map(map[string]value.Value{
			"x": value.Int(1), "y": value.Int(2), "z": value.Int(3),
		})
		return s
	}
	ref := EncodeState(build())
	for i := 0; i < 50; i++ {
		if !bytes.Equal(ref, EncodeState(build())) {
			t.Fatal("EncodeState depends on map iteration order")
		}
	}
}

func TestHashStateEqualIffStatesEqual(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		a := value.State{"v": randomValue(r, 2), "w": randomValue(r, 2)}
		b := value.State{"v": randomValue(r, 2), "w": randomValue(r, 2)}
		if a.Equal(b) != (HashState(a) == HashState(b)) {
			t.Fatalf("digest equality disagrees with state equality: %v vs %v", a, b)
		}
		if HashState(a) != HashState(a.Clone()) {
			t.Fatal("digest of clone differs")
		}
	}
}

func TestDistinctValuesDistinctEncodings(t *testing.T) {
	// Values that might collide under a sloppy encoding.
	vals := []value.Value{
		value.Int(0),
		value.Bool(false),
		value.Str("0"),
		value.Str(""),
		value.Null(),
		value.List(),
		value.List(value.Null()),
		value.Map(nil),
		value.Str("\x00"),
		value.List(value.Str("ab")),
		value.List(value.Str("a"), value.Str("b")),
		value.Map(map[string]value.Value{"ab": value.Null()}),
		value.Map(map[string]value.Value{"a": value.Str("b")}),
	}
	seen := map[string]value.Value{}
	for _, v := range vals {
		key := string(EncodeValue(v))
		if prev, dup := seen[key]; dup {
			t.Errorf("values %s and %s share an encoding", prev, v)
		}
		seen[key] = v
	}
}

func TestTupleFraming(t *testing.T) {
	// Tuple must not be confusable across field boundaries.
	a := Tuple([]byte("ab"), []byte("c"))
	b := Tuple([]byte("a"), []byte("bc"))
	c := Tuple([]byte("abc"))
	if bytes.Equal(a, b) || bytes.Equal(a, c) || bytes.Equal(b, c) {
		t.Error("Tuple framing is ambiguous")
	}
	if HashTuple([]byte("x")) == HashTuple([]byte("x"), []byte{}) {
		t.Error("field count not bound into tuple hash")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := EncodeValue(value.List(value.Int(1), value.Str("xy")))
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{0xFF}, valid[1:]...)},
		{"truncated", valid[:len(valid)-1]},
		{"trailing garbage", append(append([]byte{}, valid...), 0x00)},
		{"unknown tag", []byte{0x01, 0x7F}},
		{"huge list", []byte{0x01, 0x05, 0xFF, 0xFF, 0xFF, 0xFF}},
	}
	for _, tt := range tests {
		if _, err := DecodeValue(tt.buf); err == nil {
			t.Errorf("%s: DecodeValue succeeded, want error", tt.name)
		}
	}
	if _, err := DecodeState([]byte{0x01, 0x02}); err == nil {
		t.Error("DecodeState of non-state tag succeeded")
	}
	if _, err := DecodeState(nil); err == nil {
		t.Error("DecodeState(nil) succeeded")
	}
}

func TestDigestString(t *testing.T) {
	d := HashBytes([]byte("x"))
	if len(d.String()) != 12 {
		t.Errorf("Digest.String() = %q, want 12 hex chars", d.String())
	}
	var zero Digest
	if !zero.IsZero() {
		t.Error("zero digest not IsZero")
	}
	if d.IsZero() {
		t.Error("nonzero digest reports IsZero")
	}
}

func TestHashValueDiffersFromHashState(t *testing.T) {
	// A map value and a state with the same content must not collide:
	// they use different tags.
	m := map[string]value.Value{"a": value.Int(1)}
	if HashValue(value.Map(m)) == HashState(value.State(m)) {
		t.Error("map value and state digests collide")
	}
}

func BenchmarkEncodeState(b *testing.B) {
	s := value.State{}
	for c := 0; c < 50; c++ {
		s[string(rune('a'+c%26))+string(rune('0'+c/26))] = value.List(
			value.Int(int64(c)), value.Str("0123456789"))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeState(s)
	}
}

func BenchmarkHashState(b *testing.B) {
	s := value.State{"sum": value.Int(123456), "log": value.List(value.Str("abcdefghij"))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashState(s)
	}
}
