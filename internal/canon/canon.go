// Package canon provides the canonical, deterministic binary encoding
// of agent values and states.
//
// Reference-state mechanisms compare states produced on different hosts
// by comparing cryptographic digests. That only works if the encoding of
// a state is a pure function of its logical content: map iteration
// order, struct field padding, or gob type negotiation must not leak
// into the bytes. canon therefore defines its own minimal tag-length-
// value format with sorted map keys and fixed-width big-endian integers.
//
// The format is versioned by a leading magic byte so that future
// revisions cannot be confused with the current one.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/value"
)

// Format tags. Every encoded value starts with one tag byte.
const (
	tagNull   byte = 0x01
	tagInt    byte = 0x02
	tagString byte = 0x03
	tagBool   byte = 0x04
	tagList   byte = 0x05
	tagMap    byte = 0x06
	tagState  byte = 0x07
	tagBytes  byte = 0x08
	tagTuple  byte = 0x09
)

// version is the leading byte of every top-level encoding.
const version byte = 0x01

// ErrMalformed is returned when decoding input that is not a valid
// canonical encoding.
var ErrMalformed = errors.New("canon: malformed encoding")

// ErrTooLarge is the sentinel wrapped by the *SizeError panic raised
// when encoding a value whose length exceeds the format's maximum. It
// exists so callers can errors.Is a recovered panic value.
var ErrTooLarge = errors.New("canon: length exceeds encodable maximum")

// SizeError is the typed panic value raised by the encoding paths when
// a string, list, map, state, or tuple is too long for the format's
// 32-bit length prefixes. Emitting a truncated prefix instead would
// produce bytes the decoder misparses — a silent digest mismatch — so
// oversized input is treated as a programming error, not a value.
type SizeError struct {
	What string
	N    int
}

// Error names the oversized element and the format's maximum.
func (e *SizeError) Error() string {
	return fmt.Sprintf("canon: %s length %d exceeds maximum %d", e.What, e.N, maxLen)
}

// Unwrap lets errors.Is(err, ErrTooLarge) match a recovered SizeError.
func (e *SizeError) Unwrap() error { return ErrTooLarge }

// guardLen validates a length against maxLen before it is narrowed to
// the wire's uint32 prefix.
func guardLen(what string, n int) uint32 {
	if n > maxLen {
		panic(&SizeError{What: what, N: n})
	}
	return uint32(n)
}

// maxLen bounds individual string/list/map lengths during decoding so a
// hostile peer cannot force huge allocations from a short message, and
// bounds the same lengths during encoding so a length can never be
// silently truncated to its 32-bit prefix.
const maxLen = 1 << 26

// AppendValue appends the canonical encoding of v to dst and returns
// the extended slice.
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.Kind {
	case value.KindInt:
		dst = append(dst, tagInt)
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.Int))
	case value.KindString:
		dst = append(dst, tagString)
		dst = binary.BigEndian.AppendUint32(dst, guardLen("string", len(v.Str)))
		dst = append(dst, v.Str...)
	case value.KindBool:
		dst = append(dst, tagBool)
		if v.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case value.KindList:
		dst = append(dst, tagList)
		dst = binary.BigEndian.AppendUint32(dst, guardLen("list", len(v.List)))
		for _, e := range v.List {
			dst = AppendValue(dst, e)
		}
	case value.KindMap:
		dst = append(dst, tagMap)
		keys := value.SortedKeys(v.Map)
		dst = binary.BigEndian.AppendUint32(dst, guardLen("map", len(keys)))
		for _, k := range keys {
			dst = binary.BigEndian.AppendUint32(dst, guardLen("map key", len(k)))
			dst = append(dst, k...)
			dst = AppendValue(dst, v.Map[k])
		}
	default:
		dst = append(dst, tagNull)
	}
	return dst
}

// EncodeValue returns the canonical encoding of a single value,
// including the version prefix.
func EncodeValue(v value.Value) []byte {
	dst := make([]byte, 0, 64)
	dst = append(dst, version)
	return AppendValue(dst, v)
}

// AppendState appends the canonical encoding of a state (sorted by
// variable name) to dst.
func AppendState(dst []byte, s value.State) []byte {
	dst = append(dst, tagState)
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	dst = binary.BigEndian.AppendUint32(dst, guardLen("state", len(names)))
	for _, k := range names {
		dst = binary.BigEndian.AppendUint32(dst, guardLen("state var", len(k)))
		dst = append(dst, k...)
		dst = AppendValue(dst, s[k])
	}
	return dst
}

// EncodeState returns the canonical encoding of an agent state,
// including the version prefix.
func EncodeState(s value.State) []byte {
	dst := make([]byte, 0, 256)
	dst = append(dst, version)
	return AppendState(dst, s)
}

// Tuple encodes a heterogeneous sequence of already-encoded byte fields
// with length framing. It is used to bind several digests together
// (e.g. agent ID + hop + state digest) before signing, preventing
// ambiguity attacks that concatenation without framing would allow.
func Tuple(fields ...[]byte) []byte {
	n := 2 + 4
	for _, f := range fields {
		n += 4 + len(f)
	}
	return AppendTuple(make([]byte, 0, n), fields...)
}

// AppendTuple appends the framed tuple encoding of fields to dst and
// returns the extended slice. Combined with GetBuf/PutBuf it lets hot
// signing paths assemble bindings without a per-message allocation.
func AppendTuple(dst []byte, fields ...[]byte) []byte {
	dst = append(dst, version, tagTuple)
	dst = binary.BigEndian.AppendUint32(dst, guardLen("tuple", len(fields)))
	for _, f := range fields {
		dst = binary.BigEndian.AppendUint32(dst, guardLen("tuple field", len(f)))
		dst = append(dst, f...)
	}
	return dst
}

// ParseTuple splits a framed tuple produced by Tuple/AppendTuple back
// into its fields. The returned sub-slices alias b.
func ParseTuple(b []byte) ([][]byte, error) {
	d := &decoder{buf: b}
	v, err := d.byte()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("%w: unsupported version 0x%02x", ErrMalformed, v)
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	if tag != tagTuple {
		return nil, fmt.Errorf("%w: expected tuple tag, got 0x%02x", ErrMalformed, tag)
	}
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, ErrMalformed
	}
	fields := make([][]byte, 0, min(int(n), 1024))
	for i := 0; i < int(n); i++ {
		ln, err := d.uint32()
		if err != nil {
			return nil, err
		}
		f, err := d.bytes(int(ln))
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(b)-d.off)
	}
	return fields, nil
}

// Digest is a SHA-256 digest of a canonical encoding.
type Digest [sha256.Size]byte

// String returns the first 12 hex digits, enough for log readability.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:6]) }

// IsZero reports whether d is the all-zero digest (i.e. unset).
func (d Digest) IsZero() bool { return d == Digest{} }

// HashBytes digests an arbitrary byte string.
func HashBytes(b []byte) Digest { return sha256.Sum256(b) }

// HashValue digests the canonical encoding of a value by streaming it
// into a pooled SHA-256 state — no intermediate slice is built.
func HashValue(v value.Value) Digest {
	x := hasherPool.Get().(*Hasher)
	x.Reset()
	x.Version()
	x.Value(v)
	d := x.Sum()
	hasherPool.Put(x)
	return d
}

// HashState digests the canonical encoding of a state without
// materializing it. Two states have equal digests iff value.State.Equal
// holds (up to hash collisions).
func HashState(s value.State) Digest {
	x := hasherPool.Get().(*Hasher)
	x.Reset()
	x.Version()
	x.State(s)
	d := x.Sum()
	hasherPool.Put(x)
	return d
}

// HashTuple digests a framed tuple of byte fields via the streaming
// path.
func HashTuple(fields ...[]byte) Digest {
	x := hasherPool.Get().(*Hasher)
	x.Reset()
	x.TupleHeader(len(fields))
	for _, f := range fields {
		x.Field(f)
	}
	d := x.Sum()
	hasherPool.Put(x)
	return d
}

// decoder walks an encoded buffer.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) uint64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || n > maxLen || d.off+n > len(d.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) value() (value.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return value.Null(), err
	}
	switch tag {
	case tagNull:
		return value.Null(), nil
	case tagInt:
		u, err := d.uint64()
		if err != nil {
			return value.Null(), err
		}
		return value.Int(int64(u)), nil
	case tagString:
		n, err := d.uint32()
		if err != nil {
			return value.Null(), err
		}
		b, err := d.bytes(int(n))
		if err != nil {
			return value.Null(), err
		}
		return value.Str(string(b)), nil
	case tagBool:
		b, err := d.byte()
		if err != nil {
			return value.Null(), err
		}
		return value.Bool(b != 0), nil
	case tagList:
		n, err := d.uint32()
		if err != nil {
			return value.Null(), err
		}
		if n > maxLen {
			return value.Null(), ErrMalformed
		}
		elems := make([]value.Value, 0, min(int(n), 1024))
		for i := 0; i < int(n); i++ {
			e, err := d.value()
			if err != nil {
				return value.Null(), err
			}
			elems = append(elems, e)
		}
		return value.List(elems...), nil
	case tagMap:
		n, err := d.uint32()
		if err != nil {
			return value.Null(), err
		}
		if n > maxLen {
			return value.Null(), ErrMalformed
		}
		m := make(map[string]value.Value, min(int(n), 1024))
		for i := 0; i < int(n); i++ {
			kn, err := d.uint32()
			if err != nil {
				return value.Null(), err
			}
			kb, err := d.bytes(int(kn))
			if err != nil {
				return value.Null(), err
			}
			e, err := d.value()
			if err != nil {
				return value.Null(), err
			}
			m[string(kb)] = e
		}
		return value.Map(m), nil
	default:
		return value.Null(), fmt.Errorf("%w: unknown tag 0x%02x", ErrMalformed, tag)
	}
}

// DecodeValue parses a canonical value encoding produced by EncodeValue.
func DecodeValue(b []byte) (value.Value, error) {
	d := &decoder{buf: b}
	v, err := d.byte()
	if err != nil {
		return value.Null(), err
	}
	if v != version {
		return value.Null(), fmt.Errorf("%w: unsupported version 0x%02x", ErrMalformed, v)
	}
	out, err := d.value()
	if err != nil {
		return value.Null(), err
	}
	if d.off != len(b) {
		return value.Null(), fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(b)-d.off)
	}
	return out, nil
}

// DecodeState parses a canonical state encoding produced by EncodeState.
func DecodeState(b []byte) (value.State, error) {
	d := &decoder{buf: b}
	v, err := d.byte()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("%w: unsupported version 0x%02x", ErrMalformed, v)
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	if tag != tagState {
		return nil, fmt.Errorf("%w: expected state tag, got 0x%02x", ErrMalformed, tag)
	}
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, ErrMalformed
	}
	s := make(value.State, min(int(n), 1024))
	for i := 0; i < int(n); i++ {
		kn, err := d.uint32()
		if err != nil {
			return nil, err
		}
		kb, err := d.bytes(int(kn))
		if err != nil {
			return nil, err
		}
		e, err := d.value()
		if err != nil {
			return nil, err
		}
		s[string(kb)] = e
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(b)-d.off)
	}
	return s, nil
}
