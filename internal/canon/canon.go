// Package canon provides the canonical, deterministic binary encoding
// of agent values and states.
//
// Reference-state mechanisms compare states produced on different hosts
// by comparing cryptographic digests. That only works if the encoding of
// a state is a pure function of its logical content: map iteration
// order, struct field padding, or gob type negotiation must not leak
// into the bytes. canon therefore defines its own minimal tag-length-
// value format with sorted map keys and fixed-width big-endian integers.
//
// The format is versioned by a leading magic byte so that future
// revisions cannot be confused with the current one.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/value"
)

// Format tags. Every encoded value starts with one tag byte.
const (
	tagNull   byte = 0x01
	tagInt    byte = 0x02
	tagString byte = 0x03
	tagBool   byte = 0x04
	tagList   byte = 0x05
	tagMap    byte = 0x06
	tagState  byte = 0x07
	tagBytes  byte = 0x08
	tagTuple  byte = 0x09
)

// version is the leading byte of every top-level encoding.
const version byte = 0x01

// ErrMalformed is returned when decoding input that is not a valid
// canonical encoding.
var ErrMalformed = errors.New("canon: malformed encoding")

// maxLen bounds individual string/list/map lengths during decoding so a
// hostile peer cannot force huge allocations from a short message.
const maxLen = 1 << 26

// AppendValue appends the canonical encoding of v to dst and returns
// the extended slice.
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.Kind {
	case value.KindInt:
		dst = append(dst, tagInt)
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.Int))
	case value.KindString:
		dst = append(dst, tagString)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.Str)))
		dst = append(dst, v.Str...)
	case value.KindBool:
		dst = append(dst, tagBool)
		if v.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case value.KindList:
		dst = append(dst, tagList)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.List)))
		for _, e := range v.List {
			dst = AppendValue(dst, e)
		}
	case value.KindMap:
		dst = append(dst, tagMap)
		keys := value.SortedKeys(v.Map)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(keys)))
		for _, k := range keys {
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(k)))
			dst = append(dst, k...)
			dst = AppendValue(dst, v.Map[k])
		}
	default:
		dst = append(dst, tagNull)
	}
	return dst
}

// EncodeValue returns the canonical encoding of a single value,
// including the version prefix.
func EncodeValue(v value.Value) []byte {
	dst := make([]byte, 0, 64)
	dst = append(dst, version)
	return AppendValue(dst, v)
}

// AppendState appends the canonical encoding of a state (sorted by
// variable name) to dst.
func AppendState(dst []byte, s value.State) []byte {
	dst = append(dst, tagState)
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(names)))
	for _, k := range names {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(k)))
		dst = append(dst, k...)
		dst = AppendValue(dst, s[k])
	}
	return dst
}

// EncodeState returns the canonical encoding of an agent state,
// including the version prefix.
func EncodeState(s value.State) []byte {
	dst := make([]byte, 0, 256)
	dst = append(dst, version)
	return AppendState(dst, s)
}

// Tuple encodes a heterogeneous sequence of already-encoded byte fields
// with length framing. It is used to bind several digests together
// (e.g. agent ID + hop + state digest) before signing, preventing
// ambiguity attacks that concatenation without framing would allow.
func Tuple(fields ...[]byte) []byte {
	n := 2 + 4
	for _, f := range fields {
		n += 4 + len(f)
	}
	dst := make([]byte, 0, n)
	dst = append(dst, version, tagTuple)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(fields)))
	for _, f := range fields {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f)))
		dst = append(dst, f...)
	}
	return dst
}

// Digest is a SHA-256 digest of a canonical encoding.
type Digest [sha256.Size]byte

// String returns the first 12 hex digits, enough for log readability.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:6]) }

// IsZero reports whether d is the all-zero digest (i.e. unset).
func (d Digest) IsZero() bool { return d == Digest{} }

// HashBytes digests an arbitrary byte string.
func HashBytes(b []byte) Digest { return sha256.Sum256(b) }

// HashValue digests the canonical encoding of a value.
func HashValue(v value.Value) Digest { return sha256.Sum256(EncodeValue(v)) }

// HashState digests the canonical encoding of a state. Two states have
// equal digests iff value.State.Equal holds (up to hash collisions).
func HashState(s value.State) Digest { return sha256.Sum256(EncodeState(s)) }

// HashTuple digests a framed tuple of byte fields.
func HashTuple(fields ...[]byte) Digest { return sha256.Sum256(Tuple(fields...)) }

// decoder walks an encoded buffer.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) uint64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || n > maxLen || d.off+n > len(d.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) value() (value.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return value.Null(), err
	}
	switch tag {
	case tagNull:
		return value.Null(), nil
	case tagInt:
		u, err := d.uint64()
		if err != nil {
			return value.Null(), err
		}
		return value.Int(int64(u)), nil
	case tagString:
		n, err := d.uint32()
		if err != nil {
			return value.Null(), err
		}
		b, err := d.bytes(int(n))
		if err != nil {
			return value.Null(), err
		}
		return value.Str(string(b)), nil
	case tagBool:
		b, err := d.byte()
		if err != nil {
			return value.Null(), err
		}
		return value.Bool(b != 0), nil
	case tagList:
		n, err := d.uint32()
		if err != nil {
			return value.Null(), err
		}
		if n > maxLen {
			return value.Null(), ErrMalformed
		}
		elems := make([]value.Value, 0, min(int(n), 1024))
		for i := 0; i < int(n); i++ {
			e, err := d.value()
			if err != nil {
				return value.Null(), err
			}
			elems = append(elems, e)
		}
		return value.List(elems...), nil
	case tagMap:
		n, err := d.uint32()
		if err != nil {
			return value.Null(), err
		}
		if n > maxLen {
			return value.Null(), ErrMalformed
		}
		m := make(map[string]value.Value, min(int(n), 1024))
		for i := 0; i < int(n); i++ {
			kn, err := d.uint32()
			if err != nil {
				return value.Null(), err
			}
			kb, err := d.bytes(int(kn))
			if err != nil {
				return value.Null(), err
			}
			e, err := d.value()
			if err != nil {
				return value.Null(), err
			}
			m[string(kb)] = e
		}
		return value.Map(m), nil
	default:
		return value.Null(), fmt.Errorf("%w: unknown tag 0x%02x", ErrMalformed, tag)
	}
}

// DecodeValue parses a canonical value encoding produced by EncodeValue.
func DecodeValue(b []byte) (value.Value, error) {
	d := &decoder{buf: b}
	v, err := d.byte()
	if err != nil {
		return value.Null(), err
	}
	if v != version {
		return value.Null(), fmt.Errorf("%w: unsupported version 0x%02x", ErrMalformed, v)
	}
	out, err := d.value()
	if err != nil {
		return value.Null(), err
	}
	if d.off != len(b) {
		return value.Null(), fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(b)-d.off)
	}
	return out, nil
}

// DecodeState parses a canonical state encoding produced by EncodeState.
func DecodeState(b []byte) (value.State, error) {
	d := &decoder{buf: b}
	v, err := d.byte()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("%w: unsupported version 0x%02x", ErrMalformed, v)
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	if tag != tagState {
		return nil, fmt.Errorf("%w: expected state tag, got 0x%02x", ErrMalformed, tag)
	}
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, ErrMalformed
	}
	s := make(value.State, min(int(n), 1024))
	for i := 0; i < int(n); i++ {
		kn, err := d.uint32()
		if err != nil {
			return nil, err
		}
		kb, err := d.bytes(int(kn))
		if err != nil {
			return nil, err
		}
		e, err := d.value()
		if err != nil {
			return nil, err
		}
		s[string(kb)] = e
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(b)-d.off)
	}
	return s, nil
}
