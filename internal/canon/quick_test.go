package canon

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// genValue adapts the package's random value generator to
// testing/quick's Generator protocol via a wrapper type.
type quickValue struct{ V value.Value }

var _ quick.Generator = quickValue{}

// Generate implements quick.Generator.
func (quickValue) Generate(r *rand.Rand, size int) reflect.Value {
	depth := 3
	if size < 3 {
		depth = size
	}
	return reflect.ValueOf(quickValue{V: randomValue(r, depth)})
}

func TestQuickValueRoundTrip(t *testing.T) {
	f := func(qv quickValue) bool {
		dec, err := DecodeValue(EncodeValue(qv.V))
		return err == nil && dec.Equal(qv.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickDigestAgreesWithEquality(t *testing.T) {
	f := func(a, b quickValue) bool {
		return a.V.Equal(b.V) == (HashValue(a.V) == HashValue(b.V))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickStateRoundTrip(t *testing.T) {
	f := func(a, b, c quickValue) bool {
		st := value.State{"a": a.V, "b": b.V, "c": c.V}
		dec, err := DecodeState(EncodeState(st))
		return err == nil && dec.Equal(st)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTupleInjective(t *testing.T) {
	// Distinct field vectors yield distinct tuples (framing soundness).
	f := func(a, b []byte, split uint8) bool {
		joined := append(append([]byte{}, a...), b...)
		k := int(split) % (len(joined) + 1)
		t1 := Tuple(a, b)
		t2 := Tuple(joined[:k], joined[k:])
		same := len(a) == k && string(a) == string(joined[:k])
		return (string(t1) == string(t2)) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
