package canon

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"repro/internal/testutil"
	"testing"

	"repro/internal/value"
)

// hashStates covers every kind, nesting, and map-ordering hazard the
// streaming hasher must reproduce byte-for-byte.
func hashStates() []value.State {
	return []value.State{
		{},
		{"x": value.Int(-7)},
		{"s": value.Str("0123456789"), "b": value.Bool(true), "n": value.Null()},
		{"xs": value.List(value.Int(1), value.Str("two"), value.List(value.Bool(false)))},
		{"m": value.Map(map[string]value.Value{
			"zz": value.Int(1),
			"aa": value.Map(map[string]value.Value{"inner": value.List(value.Str("deep"))}),
			"mm": value.Str(""),
		})},
		benchState(50),
	}
}

func benchState(vars int) value.State {
	s := value.State{}
	for c := 0; c < vars; c++ {
		s[fmt.Sprintf("var%02d", c)] = value.List(
			value.Int(int64(c)), value.Str("0123456789"),
			value.Map(map[string]value.Value{"k": value.Int(int64(c * 2))}))
	}
	return s
}

func TestStreamingHashMatchesMaterialized(t *testing.T) {
	for i, s := range hashStates() {
		want := Digest(sha256.Sum256(EncodeState(s)))
		if got := HashState(s); got != want {
			t.Errorf("state %d: streaming digest %s != materialized %s", i, got, want)
		}
		for k, v := range s {
			want := Digest(sha256.Sum256(EncodeValue(v)))
			if got := HashValue(v); got != want {
				t.Errorf("state %d, value %q: streaming digest mismatch", i, k)
			}
		}
	}
}

func TestStreamingHashTupleMatchesMaterialized(t *testing.T) {
	fields := [][]byte{[]byte("role"), nil, []byte("0123456789")}
	want := Digest(sha256.Sum256(Tuple(fields...)))
	if got := HashTuple(fields...); got != want {
		t.Errorf("tuple digest: streaming %s != materialized %s", got, want)
	}
}

func TestHasherFieldHelpersMatchMaterializedTuple(t *testing.T) {
	s := value.State{"x": value.Int(1), "ys": value.List(value.Str("a"))}
	v := value.Map(map[string]value.Value{"k": value.Int(2)})
	fields := [][]byte{[]byte("label"), EncodeValue(v), EncodeState(s)}
	want := Digest(sha256.Sum256(Tuple(fields...)))

	x := NewHasher()
	x.TupleHeader(3)
	x.StringField("label")
	x.ValueField(v)
	x.StateField(s)
	if got := x.Sum(); got != want {
		t.Errorf("field helpers: streaming %s != materialized %s", got, want)
	}

	// Reset must produce an independent second digest.
	x.Reset()
	x.Version()
	x.State(s)
	if got, want := x.Sum(), HashState(s); got != want {
		t.Errorf("after Reset: %s != %s", got, want)
	}
}

func TestSizeHelpersMatchEncoding(t *testing.T) {
	for i, s := range hashStates() {
		if got, want := SizeState(s), len(AppendState(nil, s)); got != want {
			t.Errorf("state %d: SizeState = %d, encoded length = %d", i, got, want)
		}
		for k, v := range s {
			if got, want := SizeValue(v), len(AppendValue(nil, v)); got != want {
				t.Errorf("state %d, value %q: SizeValue = %d, encoded length = %d", i, k, got, want)
			}
		}
	}
}

func TestParseTupleRoundTrip(t *testing.T) {
	fields := [][]byte{[]byte("a"), nil, []byte("0123456789")}
	got, err := ParseTuple(Tuple(fields...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fields) {
		t.Fatalf("got %d fields, want %d", len(got), len(fields))
	}
	for i := range fields {
		if string(got[i]) != string(fields[i]) {
			t.Errorf("field %d: %q != %q", i, got[i], fields[i])
		}
	}
	if _, err := ParseTuple(append(Tuple(fields...), 0)); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing byte accepted: %v", err)
	}
	if _, err := ParseTuple([]byte{version, tagTuple, 0, 0, 0, 9}); err == nil {
		t.Error("truncated tuple accepted")
	}
}

func TestEncodeOversizedPanicsTyped(t *testing.T) {
	big := value.Str(string(make([]byte, maxLen+1)))
	cases := map[string]func(){
		"AppendValue": func() { AppendValue(nil, big) },
		"AppendState": func() { AppendState(nil, value.State{"x": big}) },
		"Tuple":       func() { Tuple(make([]byte, maxLen+1)) },
		"Hasher":      func() { NewHasher().Value(big) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic on oversized input", name)
					return
				}
				err, ok := r.(error)
				if !ok || !errors.Is(err, ErrTooLarge) {
					t.Errorf("%s: panic value %v does not wrap ErrTooLarge", name, r)
				}
				var se *SizeError
				if !errors.As(err, &se) {
					t.Errorf("%s: panic value %T is not a *SizeError", name, err)
				}
			}()
			fn()
		}()
	}
}

// TestHashStateAllocs pins the streaming path's allocation ceiling: the
// pooled hasher makes steady-state digesting allocation-free.
func TestHashStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation ceilings are not meaningful under the race detector")
	}
	s := benchState(50)
	HashState(s) // warm the pool and key scratch
	if avg := testing.AllocsPerRun(100, func() { HashState(s) }); avg > 0 {
		t.Errorf("HashState allocs/op = %.1f, want 0", avg)
	}
	v := s["var01"]
	HashValue(v)
	if avg := testing.AllocsPerRun(100, func() { HashValue(v) }); avg > 0 {
		t.Errorf("HashValue allocs/op = %.1f, want 0", avg)
	}
	fields := [][]byte{[]byte("trace"), []byte("0123456789")}
	if avg := testing.AllocsPerRun(100, func() { HashTuple(fields...) }); avg > 1 {
		t.Errorf("HashTuple allocs/op = %.1f, want <= 1 (variadic slice)", avg)
	}
}

// BenchmarkHashStateStreaming measures the new zero-copy digest path;
// BenchmarkHashStateMaterialized is the seed's encode-then-hash
// baseline kept for comparison (the PR's headline numbers).
func BenchmarkHashStateStreaming(b *testing.B) {
	s := benchState(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashState(s)
	}
}

func BenchmarkHashStateMaterialized(b *testing.B) {
	s := benchState(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Digest(sha256.Sum256(EncodeState(s)))
	}
}
