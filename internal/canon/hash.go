package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"slices"
	"strconv"
	"sync"

	"repro/internal/value"
)

// Hasher streams the canonical encoding of values, states, and framed
// tuples directly into a running SHA-256 state. Digesting through a
// Hasher produces exactly the digest of the materialized encoding
// (sha256(EncodeState(s)) etc.) without ever building the intermediate
// byte slice, so the protection mechanisms' per-session digest tax is
// bounded by hashing throughput, not allocator churn.
//
// A Hasher is not safe for concurrent use. The package-level Hash*
// helpers manage a pooled instance; construct one explicitly with
// NewHasher only when composing custom framings.
type Hasher struct {
	h hash.Hash
	// buf batches the format's many 1-9 byte writes into few large
	// hash.Write calls; n is the fill level.
	buf [512]byte
	n   int
	// sum receives the finalized digest without allocating.
	sum [sha256.Size]byte
	// numBuf stages decimal renderings for IntField without escaping a
	// stack buffer into the hash's Write.
	numBuf [20]byte
	// keys is per-nesting-depth sorted-key scratch, reused across calls
	// so steady-state map hashing allocates nothing.
	keys [][]string
}

// NewHasher returns a Hasher with a fresh SHA-256 state.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

var hasherPool = sync.Pool{New: func() any { return NewHasher() }}

// Reset rewinds the hash state so the Hasher can digest a new encoding.
func (x *Hasher) Reset() {
	x.h.Reset()
	x.n = 0
}

// Sum finalizes and returns the digest of everything streamed since the
// last Reset.
func (x *Hasher) Sum() Digest {
	x.flush()
	x.h.Sum(x.sum[:0])
	return Digest(x.sum)
}

func (x *Hasher) flush() {
	if x.n > 0 {
		x.h.Write(x.buf[:x.n])
		x.n = 0
	}
}

func (x *Hasher) writeByte(b byte) {
	if x.n == len(x.buf) {
		x.flush()
	}
	x.buf[x.n] = b
	x.n++
}

func (x *Hasher) writeU32(v uint32) {
	if x.n+4 > len(x.buf) {
		x.flush()
	}
	binary.BigEndian.PutUint32(x.buf[x.n:], v)
	x.n += 4
}

func (x *Hasher) writeU64(v uint64) {
	if x.n+8 > len(x.buf) {
		x.flush()
	}
	binary.BigEndian.PutUint64(x.buf[x.n:], v)
	x.n += 8
}

func (x *Hasher) writeString(s string) {
	for len(s) > 0 {
		if x.n == len(x.buf) {
			x.flush()
		}
		c := copy(x.buf[x.n:], s)
		x.n += c
		s = s[c:]
	}
}

func (x *Hasher) writeBytes(b []byte) {
	if len(b) >= len(x.buf) {
		// Large payloads bypass the batching buffer.
		x.flush()
		x.h.Write(b)
		return
	}
	if x.n+len(b) > len(x.buf) {
		x.flush()
	}
	x.n += copy(x.buf[x.n:], b)
}

// sortedKeys returns m's keys in ascending order using the depth-local
// scratch slice, so recursion into nested maps never clobbers an outer
// level's keys.
func (x *Hasher) sortedKeys(depth int, m map[string]value.Value) []string {
	for len(x.keys) <= depth {
		x.keys = append(x.keys, nil)
	}
	ks := x.keys[depth][:0]
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	x.keys[depth] = ks
	return ks
}

// Version streams the leading version byte of a top-level encoding.
func (x *Hasher) Version() { x.writeByte(version) }

// Value streams the canonical encoding of v, byte-identical to
// AppendValue.
func (x *Hasher) Value(v value.Value) { x.value(v, 0) }

func (x *Hasher) value(v value.Value, depth int) {
	switch v.Kind {
	case value.KindInt:
		x.writeByte(tagInt)
		x.writeU64(uint64(v.Int))
	case value.KindString:
		x.writeByte(tagString)
		x.writeU32(guardLen("string", len(v.Str)))
		x.writeString(v.Str)
	case value.KindBool:
		x.writeByte(tagBool)
		if v.Bool {
			x.writeByte(1)
		} else {
			x.writeByte(0)
		}
	case value.KindList:
		x.writeByte(tagList)
		x.writeU32(guardLen("list", len(v.List)))
		for _, e := range v.List {
			x.value(e, depth)
		}
	case value.KindMap:
		x.writeByte(tagMap)
		keys := x.sortedKeys(depth, v.Map)
		x.writeU32(guardLen("map", len(keys)))
		for _, k := range keys {
			x.writeU32(guardLen("map key", len(k)))
			x.writeString(k)
			x.value(v.Map[k], depth+1)
		}
	default:
		x.writeByte(tagNull)
	}
}

// State streams the canonical encoding of s, byte-identical to
// AppendState.
func (x *Hasher) State(s value.State) {
	x.writeByte(tagState)
	names := x.sortedKeys(0, s)
	x.writeU32(guardLen("state", len(names)))
	for _, k := range names {
		x.writeU32(guardLen("state var", len(k)))
		x.writeString(k)
		x.value(s[k], 1)
	}
}

// TupleHeader begins a framed tuple of n fields, including the version
// prefix. It must be followed by exactly n Field/StringField/ValueField/
// StateField calls to produce a well-formed tuple encoding.
func (x *Hasher) TupleHeader(n int) {
	x.writeByte(version)
	x.writeByte(tagTuple)
	x.writeU32(guardLen("tuple", n))
}

// Field streams one length-framed byte field.
func (x *Hasher) Field(b []byte) {
	x.writeU32(guardLen("tuple field", len(b)))
	x.writeBytes(b)
}

// StringField streams one length-framed string field without a []byte
// conversion.
func (x *Hasher) StringField(s string) {
	x.writeU32(guardLen("tuple field", len(s)))
	x.writeString(s)
}

// IntField streams a framed field holding n's decimal rendering — the
// framing protocol bindings use for hop and statement counters.
func (x *Hasher) IntField(n int64) {
	b := strconv.AppendInt(x.numBuf[:0], n, 10)
	x.writeU32(uint32(len(b)))
	x.writeBytes(b)
}

// ValueField streams a framed field whose content is EncodeValue(v),
// without materializing it.
func (x *Hasher) ValueField(v value.Value) {
	x.writeU32(guardLen("tuple field", 1+SizeValue(v)))
	x.writeByte(version)
	x.value(v, 0)
}

// StateField streams a framed field whose content is EncodeState(s),
// without materializing it.
func (x *Hasher) StateField(s value.State) {
	x.writeU32(guardLen("tuple field", 1+SizeState(s)))
	x.writeByte(version)
	x.State(s)
}

// SizeValue returns the exact number of bytes AppendValue(nil, v) would
// emit, without encoding. It exists so streamed tuple framings can
// length-prefix a value field before its bytes are produced.
func SizeValue(v value.Value) int {
	switch v.Kind {
	case value.KindInt:
		return 1 + 8
	case value.KindString:
		return 1 + 4 + len(v.Str)
	case value.KindBool:
		return 1 + 1
	case value.KindList:
		n := 1 + 4
		for _, e := range v.List {
			n += SizeValue(e)
		}
		return n
	case value.KindMap:
		n := 1 + 4
		for k, e := range v.Map {
			n += 4 + len(k) + SizeValue(e)
		}
		return n
	default:
		return 1
	}
}

// SizeState returns the exact number of bytes AppendState(nil, s) would
// emit.
func SizeState(s value.State) int {
	n := 1 + 4
	for k, v := range s {
		n += 4 + len(k) + SizeValue(v)
	}
	return n
}

// AcquireHasher returns a pooled Hasher, reset and ready to stream.
// Pair with ReleaseHasher once the digest has been taken.
func AcquireHasher() *Hasher {
	x := hasherPool.Get().(*Hasher)
	x.Reset()
	return x
}

// ReleaseHasher recycles a Hasher obtained from AcquireHasher.
func ReleaseHasher(x *Hasher) { hasherPool.Put(x) }

// BeginField frames a tuple field of exactly size bytes that the
// caller streams next (e.g. a nested TupleHeader + fields). The caller
// is responsible for the size matching the streamed bytes; SizeValue/
// SizeState provide the value-encoding sizes.
func (x *Hasher) BeginField(size int) {
	x.writeU32(guardLen("tuple field", size))
}

// bufPool recycles encode scratch for call sites that need canonical
// bytes only transiently — signature bindings, wire payload assembly —
// so the hot protocol paths stop allocating per message.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// GetBuf returns a pooled scratch buffer of length zero. Return it with
// PutBuf once no reference to its bytes survives (copy anything that
// must outlive the call).
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf recycles a buffer obtained from GetBuf. Oversized buffers are
// dropped so one huge state cannot pin memory in the pool forever.
func PutBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
