// Package proof implements the proof-verification mechanism the paper
// analyses in §3.4: "proofs ... consist of some execution information
// and the final result. The idea now is that there exists a more
// efficient way to check the computation by checking the proof than by
// recomputing the execution", checking "only constantly many bits of
// the proof".
//
// SUBSTITUTION (see DESIGN.md §2). The literature's holographic/PCP
// proofs are set aside by the paper itself because "currently, only
// NP-hard algorithms are known to construct holographic proofs". This
// reproduction therefore substitutes a Merkle-committed trace with
// random spot-checking, which preserves the mechanism's *interface and
// cost profile* — commit once, verify by opening O(k·log n) bytes
// instead of re-executing O(n) statements, with any post-commitment
// tampering of an opened entry detected — but NOT the completeness of
// real PCPs: a prover who commits to an internally consistent but
// wrong trace passes spot checks. The benchmark series D quantifies
// the verification-cost asymmetry, which is the property the paper's
// analysis turns on.
//
// In the framework's attribute space: moment = after the task (proofs
// are "sent to the agent originator, which checks the proofs after the
// agent finishes", per Biehl/Meyer/Wetzel); reference data = none at
// check time ("proofs do not need reference data as parameters, as
// they include all relevant data"); algorithm = proofs.
package proof

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/gob"
	"fmt"
	"math/big"
	"sync"

	"repro/internal/agent"
	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/sigcrypto"
	"repro/internal/trace"
	"repro/internal/transport"
)

// MechanismName is the baggage key and call namespace.
const MechanismName = "proof"

// Commitment is a host's signed proof commitment for one session.
type Commitment struct {
	Host      string
	Hop       int
	Entry     string
	Root      canon.Digest // Merkle root over trace entries
	N         int          // number of trace entries
	StateHash canon.Digest // resulting state
	Sig       sigcrypto.Signature
}

func (c *Commitment) bindingBytes(agentID string) []byte {
	return canon.Tuple(
		[]byte("proof-commitment"),
		[]byte(agentID),
		[]byte(c.Host),
		[]byte(fmt.Sprintf("%d", c.Hop)),
		[]byte(c.Entry),
		c.Root[:],
		[]byte(fmt.Sprintf("%d", c.N)),
		c.StateHash[:],
	)
}

// Opening is a prover's answer to one spot-check query.
type Opening struct {
	Index int
	Entry trace.Entry
	Path  []PathElem
}

// OpenRequest asks a prover to open trace positions.
type OpenRequest struct {
	AgentID string
	Hop     int
	Indices []int
}

// Mechanism is the per-node protocol instance: it commits to a Merkle
// tree over the session trace at departure and answers open requests.
// Hosts running it must set host.Config.RecordTrace.
type Mechanism struct {
	core.BaseMechanism

	mu    sync.Mutex
	store map[storeKey]storedProof
}

type storeKey struct {
	agentID string
	hop     int
}

type storedProof struct {
	trace trace.Trace
	tree  *Tree
}

var (
	_ core.Mechanism             = (*Mechanism)(nil)
	_ core.ExecutionLogRequester = (*Mechanism)(nil)
	_ core.CallHandler           = (*Mechanism)(nil)
)

// New builds the mechanism.
func New() *Mechanism {
	return &Mechanism{store: make(map[storeKey]storedProof)}
}

// Name implements core.Mechanism.
func (m *Mechanism) Name() string { return MechanismName }

// RequestsExecutionLog declares reference data (Fig. 4).
func (m *Mechanism) RequestsExecutionLog() {}

// PrepareDeparture builds and signs the proof commitment.
func (m *Mechanism) PrepareDeparture(_ context.Context, hc *core.HostContext, ag *agent.Agent, rec *host.SessionRecord) error {
	if rec.Trace.Len() == 0 {
		return fmt.Errorf("proof: host %s records no trace (set host.Config.RecordTrace)", rec.HostName)
	}
	leaves := make([]canon.Digest, rec.Trace.Len())
	for i, e := range rec.Trace.Entries {
		leaves[i] = trace.EntryDigest(e)
	}
	tree, err := BuildTree(leaves)
	if err != nil {
		return fmt.Errorf("proof: %w", err)
	}
	m.mu.Lock()
	m.store[storeKey{ag.ID, rec.Hop}] = storedProof{trace: rec.Trace, tree: tree}
	m.mu.Unlock()

	c := Commitment{
		Host:      rec.HostName,
		Hop:       rec.Hop,
		Entry:     rec.Entry,
		Root:      tree.Root(),
		N:         tree.N(),
		StateHash: rec.ResultingDigest(),
	}
	c.Sig = hc.Host.Keys().Sign(c.bindingBytes(ag.ID))

	chain, err := ChainFromAgent(ag)
	if err != nil {
		return fmt.Errorf("proof: reading chain: %w", err)
	}
	chain = append(chain, c)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(chain); err != nil {
		return fmt.Errorf("proof: encoding chain: %w", err)
	}
	ag.SetBaggage(MechanismName, buf.Bytes())
	return nil
}

// HandleCall answers "open" requests with Merkle openings.
func (m *Mechanism) HandleCall(_ context.Context, hc *core.HostContext, method string, body []byte) ([]byte, error) {
	if method != "open" {
		return nil, fmt.Errorf("%w: proof/%s", transport.ErrUnknownMethod, method)
	}
	var req OpenRequest
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
		return nil, fmt.Errorf("proof: malformed open request: %w", err)
	}
	m.mu.Lock()
	sp, ok := m.store[storeKey{req.AgentID, req.Hop}]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("proof: no stored proof for agent %q hop %d", req.AgentID, req.Hop)
	}
	openings := make([]Opening, 0, len(req.Indices))
	for _, i := range req.Indices {
		if i < 0 || i >= sp.trace.Len() {
			return nil, fmt.Errorf("proof: index %d out of range", i)
		}
		path, err := sp.tree.Open(i)
		if err != nil {
			return nil, err
		}
		openings = append(openings, Opening{Index: i, Entry: sp.trace.Entries[i], Path: path})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireOpenings{Openings: toWireOpenings(openings)}); err != nil {
		return nil, fmt.Errorf("proof: encoding openings: %w", err)
	}
	return buf.Bytes(), nil
}

// wire forms: trace entries reuse the trace package's canonical value
// encoding via a single-entry Trace.
type wireOpenings struct {
	Openings []wireOpening
}

type wireOpening struct {
	Index    int
	EntryEnc []byte
	Path     []PathElem
}

func toWireOpenings(os []Opening) []wireOpening {
	out := make([]wireOpening, len(os))
	for i, o := range os {
		enc, err := (trace.Trace{Entries: []trace.Entry{o.Entry}}).Marshal()
		if err != nil {
			enc = nil // undecodable on the far side; verification fails, which is correct
		}
		out[i] = wireOpening{Index: o.Index, EntryEnc: enc, Path: o.Path}
	}
	return out
}

func fromWireOpenings(ws []wireOpening) ([]Opening, error) {
	out := make([]Opening, len(ws))
	for i, w := range ws {
		tr, err := trace.Unmarshal(w.EntryEnc)
		if err != nil || tr.Len() != 1 {
			return nil, fmt.Errorf("proof: opening %d malformed", i)
		}
		out[i] = Opening{Index: w.Index, Entry: tr.Entries[0], Path: w.Path}
	}
	return out, nil
}

// AttachChain encodes a commitment chain into the agent's baggage,
// replacing any existing one.
func AttachChain(ag *agent.Agent, chain []Commitment) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(chain); err != nil {
		return fmt.Errorf("proof: encoding chain: %w", err)
	}
	ag.SetBaggage(MechanismName, buf.Bytes())
	return nil
}

// ChainFromAgent decodes the commitment chain from agent baggage.
func ChainFromAgent(ag *agent.Agent) ([]Commitment, error) {
	data, ok := ag.GetBaggage(MechanismName)
	if !ok {
		return nil, nil
	}
	var chain []Commitment
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&chain); err != nil {
		return nil, fmt.Errorf("proof: decoding chain: %w", err)
	}
	return chain, nil
}

// VerifyConfig parameterizes spot-check verification.
type VerifyConfig struct {
	Net      transport.Network
	Registry *sigcrypto.Registry
	// K is the number of random positions opened per session; 0 means 8.
	K int
	// Rand draws a uniform index in [0, n); nil uses crypto/rand. Tests
	// inject determinism here.
	Rand func(n int) (int, error)
}

// Report is the verification outcome.
type Report struct {
	OK bool
	// Suspect and SuspectHop identify the first failing session.
	Suspect    string
	SuspectHop int
	Reason     string
	// EntriesOpened counts trace entries actually transferred and
	// checked — the verifier's cost, sublinear in total trace length.
	EntriesOpened int
	TotalTraceLen int
}

// Verify spot-checks every committed session of a returned agent. For
// each session it verifies the commitment signature, then opens K
// random trace positions and authenticates them against the committed
// root, also checking that each opened entry's statement identifier
// exists in the agent's program. ctx bounds the open calls.
func Verify(ctx context.Context, cfg VerifyConfig, ag *agent.Agent) (*Report, error) {
	chain, err := ChainFromAgent(ag)
	if err != nil {
		return nil, err
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("proof: agent carries no commitments")
	}
	prog, err := ag.Program()
	if err != nil {
		return nil, err
	}
	k := cfg.K
	if k <= 0 {
		k = 8
	}
	draw := cfg.Rand
	if draw == nil {
		draw = func(n int) (int, error) {
			b, err := rand.Int(rand.Reader, big.NewInt(int64(n)))
			if err != nil {
				return 0, err
			}
			return int(b.Int64()), nil
		}
	}

	rep := &Report{}
	blame := func(c Commitment, reason string) *Report {
		rep.OK = false
		rep.Suspect = c.Host
		rep.SuspectHop = c.Hop
		rep.Reason = reason
		return rep
	}
	for _, c := range chain {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("proof: verify: %w", err)
		}
		rep.TotalTraceLen += c.N
		if err := cfg.Registry.Verify(c.bindingBytes(ag.ID), c.Sig); err != nil {
			return blame(c, fmt.Sprintf("commitment signature invalid: %v", err)), nil
		}
		if c.Sig.Signer != c.Host {
			return blame(c, fmt.Sprintf("commitment signed by %q, not %q", c.Sig.Signer, c.Host)), nil
		}
		if c.N <= 0 {
			return blame(c, "commitment claims an empty trace"), nil
		}
		// Draw K distinct-ish indices (duplicates allowed; they cost a
		// little coverage, not soundness).
		indices := make([]int, 0, k)
		for j := 0; j < k && j < c.N; j++ {
			idx, err := draw(c.N)
			if err != nil {
				return nil, fmt.Errorf("proof: drawing index: %w", err)
			}
			indices = append(indices, idx)
		}
		reqBuf := &bytes.Buffer{}
		if err := gob.NewEncoder(reqBuf).Encode(OpenRequest{AgentID: ag.ID, Hop: c.Hop, Indices: indices}); err != nil {
			return nil, fmt.Errorf("proof: encoding request: %w", err)
		}
		resp, err := cfg.Net.Call(ctx, c.Host, MechanismName+"/open", reqBuf.Bytes())
		if err != nil {
			return blame(c, fmt.Sprintf("host refused to open proof: %v", err)), nil
		}
		// A full node wraps mechanism replies in the urgent envelope;
		// tolerant unwrap so a bare reply passes through unchanged and an
		// honest host is never blamed for carrying baggage.
		resp, _ = transport.OpenReply(resp)
		var w wireOpenings
		if err := gob.NewDecoder(bytes.NewReader(resp)).Decode(&w); err != nil {
			return blame(c, fmt.Sprintf("malformed openings: %v", err)), nil
		}
		openings, err := fromWireOpenings(w.Openings)
		if err != nil {
			return blame(c, err.Error()), nil
		}
		if len(openings) != len(indices) {
			return blame(c, fmt.Sprintf("asked for %d openings, got %d", len(indices), len(openings))), nil
		}
		for j, o := range openings {
			if o.Index != indices[j] {
				return blame(c, fmt.Sprintf("opening %d answers index %d, asked %d", j, o.Index, indices[j])), nil
			}
			if !VerifyPath(trace.EntryDigest(o.Entry), o.Index, c.N, o.Path, c.Root) {
				return blame(c, fmt.Sprintf("opening at index %d fails Merkle authentication", o.Index)), nil
			}
			// Local well-formedness: the statement must exist in the code.
			if prog.StatementText(o.Entry.StmtID) == "" {
				return blame(c, fmt.Sprintf("trace entry %d names unknown statement %d", o.Index, o.Entry.StmtID)), nil
			}
			rep.EntriesOpened++
		}
	}
	rep.OK = true
	return rep, nil
}

// FullRecheck is the baseline the proof mechanism is measured against:
// fetch nothing, re-execute nothing — instead, it re-executes the whole
// journey like a Vigna audit would, for cost comparison in Series D.
// It requires the full traces, so it asks each host to open *every*
// index.
func FullRecheck(ctx context.Context, cfg VerifyConfig, ag *agent.Agent) (*Report, error) {
	chain, err := ChainFromAgent(ag)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	for _, c := range chain {
		rep.TotalTraceLen += c.N
		indices := make([]int, c.N)
		for i := range indices {
			indices[i] = i
		}
		reqBuf := &bytes.Buffer{}
		if err := gob.NewEncoder(reqBuf).Encode(OpenRequest{AgentID: ag.ID, Hop: c.Hop, Indices: indices}); err != nil {
			return nil, err
		}
		resp, err := cfg.Net.Call(ctx, c.Host, MechanismName+"/open", reqBuf.Bytes())
		if err != nil {
			rep.OK = false
			rep.Suspect = c.Host
			rep.SuspectHop = c.Hop
			rep.Reason = err.Error()
			return rep, nil
		}
		resp, _ = transport.OpenReply(resp)
		var w wireOpenings
		if err := gob.NewDecoder(bytes.NewReader(resp)).Decode(&w); err != nil {
			return nil, err
		}
		openings, err := fromWireOpenings(w.Openings)
		if err != nil {
			return nil, err
		}
		for _, o := range openings {
			if !VerifyPath(trace.EntryDigest(o.Entry), o.Index, c.N, o.Path, c.Root) {
				rep.OK = false
				rep.Suspect = c.Host
				rep.SuspectHop = c.Hop
				rep.Reason = fmt.Sprintf("entry %d fails authentication", o.Index)
				return rep, nil
			}
			rep.EntriesOpened++
		}
	}
	rep.OK = true
	return rep, nil
}
