package proof

import (
	"fmt"

	"repro/internal/canon"
)

// Merkle tree over trace-entry digests, with domain-separated leaf and
// interior hashing (preventing leaf/node confusion attacks). The last
// leaf is duplicated at odd levels, the classic balanced construction.

// merkleLeaf / merkleNode compute the domain-separated hashes.
func merkleLeaf(d canon.Digest) canon.Digest {
	return canon.HashTuple([]byte("merkle-leaf"), d[:])
}

func merkleNode(l, r canon.Digest) canon.Digest {
	return canon.HashTuple([]byte("merkle-node"), l[:], r[:])
}

// Tree is a Merkle tree with all levels retained (the prover keeps it
// to answer openings).
type Tree struct {
	// levels[0] is the leaf-hash level; the last level has one root.
	levels [][]canon.Digest
}

// BuildTree hashes the given leaf digests into a tree. At least one
// leaf is required.
func BuildTree(leaves []canon.Digest) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("proof: cannot build a tree over zero leaves")
	}
	level := make([]canon.Digest, len(leaves))
	for i, d := range leaves {
		level[i] = merkleLeaf(d)
	}
	t := &Tree{levels: [][]canon.Digest{level}}
	for len(level) > 1 {
		next := make([]canon.Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, merkleNode(level[i], level[i]))
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() canon.Digest {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// N returns the number of leaves.
func (t *Tree) N() int { return len(t.levels[0]) }

// PathElem is one sibling on an opening path. The sibling's side is
// not carried on the wire: the verifier derives it from the claimed
// index, so an opening cannot be replayed at a different position.
type PathElem struct {
	Sibling canon.Digest
}

// Open returns the authentication path for leaf index i.
func (t *Tree) Open(i int) ([]PathElem, error) {
	if i < 0 || i >= t.N() {
		return nil, fmt.Errorf("proof: leaf index %d out of range (n=%d)", i, t.N())
	}
	var path []PathElem
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		sib := idx ^ 1
		if sib >= len(level) {
			sib = idx // odd level: duplicated self
		}
		path = append(path, PathElem{Sibling: level[sib]})
		idx /= 2
	}
	return path, nil
}

// VerifyPath checks that a leaf digest at index i authenticates against
// the root via the given path, for a tree of n leaves.
func VerifyPath(leaf canon.Digest, i, n int, path []PathElem, root canon.Digest) bool {
	if i < 0 || i >= n || n <= 0 {
		return false
	}
	cur := merkleLeaf(leaf)
	idx := i
	width := n
	for _, el := range path {
		if idx%2 == 1 {
			cur = merkleNode(el.Sibling, cur)
		} else {
			cur = merkleNode(cur, el.Sibling)
		}
		idx /= 2
		width = (width + 1) / 2
	}
	if width != 1 {
		return false
	}
	return cur == root
}
