package proof_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/platformtest"
	"repro/internal/proof"
	"repro/internal/value"
)

const tourCode = `
proc main() {
    total = 0
    let i = 0
    while i < 50 {
        total = total + i
        i = i + 1
    }
    migrate("h1", "visit")
}
proc visit() {
    total = total + read("offer")
    if here() == "h1" { migrate("h2", "visit") } else { migrate("home2", "finish") }
}
proc finish() { done() }`

func buildBed(t *testing.T) *platformtest.Bed {
	t.Helper()
	bed := platformtest.New(t)
	offers := map[string]int64{"h1": 10, "h2": 20}
	for _, name := range []string{"home", "h1", "h2", "home2"} {
		name := name
		bed.AddHost(name, platformtest.HostOptions{
			Trusted:    strings.HasPrefix(name, "home"),
			Mechanisms: func() []core.Mechanism { return []core.Mechanism{proof.New()} },
			Configure: func(c *host.Config) {
				c.RecordTrace = true
				if p, ok := offers[name]; ok {
					c.Resources = map[string]value.Value{"offer": value.Int(p)}
				}
			},
		})
	}
	return bed
}

func verifyCfg(bed *platformtest.Bed) proof.VerifyConfig {
	// Deterministic index drawing for reproducible tests.
	seq := 0
	return proof.VerifyConfig{
		Net:      bed.Net,
		Registry: bed.Reg,
		K:        4,
		Rand: func(n int) (int, error) {
			seq = (seq*31 + 7) % n
			return seq, nil
		},
	}
}

func TestHonestJourneyVerifies(t *testing.T) {
	bed := buildBed(t)
	ag := bed.NewAgent("tourist", tourCode)
	if err := bed.Run("home", ag); err != nil {
		t.Fatal(err)
	}
	done, _ := bed.Completed()
	if len(done) != 1 {
		t.Fatal("agent did not complete")
	}
	rep, err := proof.Verify(context.Background(), verifyCfg(bed), done[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("honest journey failed verification: %+v", rep)
	}
	// Sublinearity: far fewer entries opened than the total trace.
	if rep.EntriesOpened >= rep.TotalTraceLen {
		t.Errorf("opened %d of %d entries — not sublinear", rep.EntriesOpened, rep.TotalTraceLen)
	}
	if rep.EntriesOpened == 0 {
		t.Error("no entries opened")
	}
}

func TestChainCommitmentsPerHop(t *testing.T) {
	bed := buildBed(t)
	ag := bed.NewAgent("tourist", tourCode)
	if err := bed.Run("home", ag); err != nil {
		t.Fatal(err)
	}
	done, _ := bed.Completed()
	chain, err := proof.ChainFromAgent(done[0])
	if err != nil {
		t.Fatal(err)
	}
	// home, h1, h2 committed (home2 ran the final session, no departure).
	if len(chain) != 3 {
		t.Fatalf("chain length %d, want 3", len(chain))
	}
	if chain[0].Host != "home" || chain[1].Host != "h1" || chain[2].Host != "h2" {
		t.Errorf("chain hosts: %v %v %v", chain[0].Host, chain[1].Host, chain[2].Host)
	}
	// The first session ran the 50-iteration loop: its committed trace
	// is much longer than the others.
	if chain[0].N < 100 {
		t.Errorf("home trace N = %d, expected >100", chain[0].N)
	}
}

func TestTamperedCommitmentDetected(t *testing.T) {
	bed := buildBed(t)
	ag := bed.NewAgent("tourist", tourCode)
	if err := bed.Run("home", ag); err != nil {
		t.Fatal(err)
	}
	done, _ := bed.Completed()
	chain, err := proof.ChainFromAgent(done[0])
	if err != nil {
		t.Fatal(err)
	}
	chain[1].Root[0] ^= 0xFF
	// Re-attach: signature over the binding no longer matches.
	reattachChain(t, done[0], chain)
	rep, err := proof.Verify(context.Background(), verifyCfg(bed), done[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Suspect != "h1" {
		t.Errorf("tampered root not detected: %+v", rep)
	}
}

func TestServedEntryMismatchDetected(t *testing.T) {
	// The prover commits honestly, but we verify against a different
	// agent run's chain — an opened entry can never authenticate against
	// a root from different content. Simulated by flipping StateHash
	// (signature binding breaks) vs flipping nothing server-side: here
	// we instead re-point the chain's N, making path verification fail.
	bed := buildBed(t)
	ag := bed.NewAgent("tourist", tourCode)
	if err := bed.Run("home", ag); err != nil {
		t.Fatal(err)
	}
	done, _ := bed.Completed()
	chain, err := proof.ChainFromAgent(done[0])
	if err != nil {
		t.Fatal(err)
	}
	chain[0].N = chain[0].N / 2
	reattachChain(t, done[0], chain)
	rep, err := proof.Verify(context.Background(), verifyCfg(bed), done[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Error("mismatched tree size not detected")
	}
}

func TestVerifyWithoutCommitments(t *testing.T) {
	bed := buildBed(t)
	ag := bed.NewAgent("fresh", tourCode)
	if _, err := proof.Verify(context.Background(), verifyCfg(bed), ag); err == nil {
		t.Error("agent without commitments verified")
	}
}

func TestFullRecheckOpensEverything(t *testing.T) {
	bed := buildBed(t)
	ag := bed.NewAgent("tourist", tourCode)
	if err := bed.Run("home", ag); err != nil {
		t.Fatal(err)
	}
	done, _ := bed.Completed()
	rep, err := proof.FullRecheck(context.Background(), verifyCfg(bed), done[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("full recheck failed: %+v", rep)
	}
	if rep.EntriesOpened != rep.TotalTraceLen {
		t.Errorf("full recheck opened %d of %d", rep.EntriesOpened, rep.TotalTraceLen)
	}
	// The cost asymmetry that motivates proofs:
	spot, err := proof.Verify(context.Background(), verifyCfg(bed), done[0])
	if err != nil {
		t.Fatal(err)
	}
	if spot.EntriesOpened*2 >= rep.EntriesOpened {
		t.Errorf("spot check (%d) not substantially cheaper than full (%d)",
			spot.EntriesOpened, rep.EntriesOpened)
	}
}

func reattachChain(t *testing.T, ag *agent.Agent, chain []proof.Commitment) {
	t.Helper()
	if err := proof.AttachChain(ag, chain); err != nil {
		t.Fatal(err)
	}
}
