package proof

import (
	"math/rand"
	"testing"

	"repro/internal/canon"
)

func leaves(n int) []canon.Digest {
	out := make([]canon.Digest, n)
	for i := range out {
		out[i] = canon.HashBytes([]byte{byte(i), byte(i >> 8)})
	}
	return out
}

func TestBuildTreeValidation(t *testing.T) {
	if _, err := BuildTree(nil); err == nil {
		t.Error("empty tree built")
	}
}

func TestSingleLeaf(t *testing.T) {
	ls := leaves(1)
	tr, err := BuildTree(ls)
	if err != nil {
		t.Fatal(err)
	}
	path, err := tr.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 0 {
		t.Errorf("single-leaf path length %d", len(path))
	}
	if !VerifyPath(ls[0], 0, 1, path, tr.Root()) {
		t.Error("single leaf does not verify")
	}
}

func TestAllLeavesVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100} {
		ls := leaves(n)
		tr, err := BuildTree(ls)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			path, err := tr.Open(i)
			if err != nil {
				t.Fatalf("n=%d open(%d): %v", n, i, err)
			}
			if !VerifyPath(ls[i], i, n, path, tr.Root()) {
				t.Errorf("n=%d leaf %d does not verify", n, i)
			}
		}
	}
}

func TestWrongLeafFails(t *testing.T) {
	ls := leaves(9)
	tr, err := BuildTree(ls)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		path, err := tr.Open(i)
		if err != nil {
			t.Fatal(err)
		}
		bad := ls[i]
		bad[0] ^= 1
		if VerifyPath(bad, i, 9, path, tr.Root()) {
			t.Errorf("tampered leaf %d verified", i)
		}
		// Wrong index with right leaf must also fail (except by rare
		// structural coincidence — none at this size).
		other := (i + 1) % 9
		if VerifyPath(ls[i], other, 9, path, tr.Root()) {
			t.Errorf("leaf %d verified at index %d", i, other)
		}
	}
}

func TestTruncatedPathFails(t *testing.T) {
	ls := leaves(16)
	tr, err := BuildTree(ls)
	if err != nil {
		t.Fatal(err)
	}
	path, err := tr.Open(5)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyPath(ls[5], 5, 16, path[:len(path)-1], tr.Root()) {
		t.Error("truncated path verified")
	}
	if VerifyPath(ls[5], 5, 16, append(path, path[0]), tr.Root()) {
		t.Error("padded path verified")
	}
}

func TestOpenOutOfRange(t *testing.T) {
	tr, err := BuildTree(leaves(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Open(-1); err == nil {
		t.Error("Open(-1) succeeded")
	}
	if _, err := tr.Open(4); err == nil {
		t.Error("Open(4) succeeded")
	}
	if VerifyPath(leaves(1)[0], -1, 4, nil, tr.Root()) {
		t.Error("negative index verified")
	}
}

func TestRootSensitivity(t *testing.T) {
	ls := leaves(8)
	tr1, err := BuildTree(ls)
	if err != nil {
		t.Fatal(err)
	}
	ls2 := leaves(8)
	ls2[3][0] ^= 1
	tr2, err := BuildTree(ls2)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Root() == tr2.Root() {
		t.Error("different leaves, same root")
	}
	// Order matters.
	ls3 := leaves(8)
	ls3[0], ls3[1] = ls3[1], ls3[0]
	tr3, err := BuildTree(ls3)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Root() == tr3.Root() {
		t.Error("permuted leaves, same root")
	}
}

func TestPathLengthLogarithmic(t *testing.T) {
	tr, err := BuildTree(leaves(1024))
	if err != nil {
		t.Fatal(err)
	}
	path, err := tr.Open(513)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 10 {
		t.Errorf("path length %d for n=1024, want 10", len(path))
	}
}

func TestRandomizedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(64)
		ls := make([]canon.Digest, n)
		for i := range ls {
			var b [8]byte
			r.Read(b[:])
			ls[i] = canon.HashBytes(b[:])
		}
		tr, err := BuildTree(ls)
		if err != nil {
			t.Fatal(err)
		}
		i := r.Intn(n)
		path, err := tr.Open(i)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyPath(ls[i], i, n, path, tr.Root()) {
			t.Fatalf("trial %d: n=%d i=%d does not verify", trial, n, i)
		}
	}
}
