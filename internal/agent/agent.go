// Package agent defines the mobile agent construct of the paper's
// execution model (§2.1): "a construct consisting of code, data state,
// and execution state", migrating along a sequence of hosts.
//
// The code part is agentlang source (shipped verbatim and identified by
// its digest). The data state is a value.State. The execution state —
// this platform uses weak migration like Mole (§5) — is the name of the
// entry procedure the next host must start, plus the hop counter.
//
// Agents additionally carry "baggage": opaque per-mechanism payloads
// (signed reference states, input logs, trace commitments) that
// protection mechanisms attach and consume. Baggage travels inside the
// data part of the agent "as this part is transported automatically"
// (§5).
package agent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/agentlang"
	"repro/internal/canon"
	"repro/internal/value"
)

// Common validation errors.
var (
	ErrNoCode     = errors.New("agent: empty code")
	ErrNoEntry    = errors.New("agent: empty entry procedure")
	ErrBadBaggage = errors.New("agent: malformed baggage")
)

// Agent is a mobile agent between (or during) execution sessions.
type Agent struct {
	// ID uniquely names this agent instance.
	ID string
	// Owner is the principal the agent acts for; the owner's home host
	// is usually the first and last stop of the itinerary.
	Owner string
	// Code is the agentlang source. It is immutable for the lifetime of
	// the agent; CodeDigest pins it.
	Code string
	// CodeDigest is the digest of Code, fixed at creation. A host that
	// receives an agent whose code does not match the digest rejects it.
	CodeDigest canon.Digest
	// State is the agent's data state — the "variable parts" that
	// reference states are defined over.
	State value.State
	// Entry is the execution state under weak migration: the procedure
	// the next execution session starts with.
	Entry string
	// Hop counts completed execution sessions, starting at 0 before the
	// first session. It parameterizes signatures so protocol messages
	// from different sessions can never be confused.
	Hop int
	// Route records the hosts visited so far, in order. Mechanisms that
	// check after the task use it to identify whom to blame (§3.5:
	// "the route, i.e. the list of visited hosts has to be stored").
	Route []string
	// Baggage holds per-mechanism opaque payloads, keyed by mechanism
	// name.
	Baggage map[string][]byte

	// prog caches the parsed program; not serialized.
	prog *agentlang.Program

	// digest memoizes the canonical state digest between mutations.
	// Every protection mechanism digests the state at sign, handoff,
	// countersign, and verify time — refproto alone 3-4 times per hop —
	// so StateDigest is O(1) while the state is unchanged. The platform
	// write paths (RunSession, SetVar, SetState, MutateState) invalidate
	// it; direct Go-level writes to State must be followed by
	// InvalidateStateDigest.
	digMu    sync.Mutex
	dig      canon.Digest
	digValid bool
}

// New creates an agent with the given identity and code, validating
// that the code parses and the entry procedure exists.
func New(id, owner, code, entry string) (*Agent, error) {
	if code == "" {
		return nil, ErrNoCode
	}
	if entry == "" {
		return nil, ErrNoEntry
	}
	prog, err := agentlang.Parse(code)
	if err != nil {
		return nil, fmt.Errorf("agent: parsing code: %w", err)
	}
	if !prog.HasProc(entry) {
		return nil, fmt.Errorf("agent: entry procedure %q not in code", entry)
	}
	return &Agent{
		ID:         id,
		Owner:      owner,
		Code:       code,
		CodeDigest: canon.HashBytes([]byte(code)),
		State:      value.State{},
		Entry:      entry,
		Baggage:    make(map[string][]byte),
		prog:       prog,
	}, nil
}

// Program returns the parsed code, parsing and caching on first use.
func (a *Agent) Program() (*agentlang.Program, error) {
	if a.prog != nil {
		return a.prog, nil
	}
	prog, err := agentlang.Parse(a.Code)
	if err != nil {
		return nil, fmt.Errorf("agent: parsing code: %w", err)
	}
	a.prog = prog
	return prog, nil
}

// Validate checks internal consistency: code digest, parsability, and
// entry existence. Hosts call it on every arriving agent.
func (a *Agent) Validate() error {
	if a.Code == "" {
		return ErrNoCode
	}
	if a.Entry == "" {
		return ErrNoEntry
	}
	if canon.HashBytes([]byte(a.Code)) != a.CodeDigest {
		return errors.New("agent: code does not match code digest")
	}
	prog, err := a.Program()
	if err != nil {
		return err
	}
	if !prog.HasProc(a.Entry) {
		return fmt.Errorf("agent: entry procedure %q not in code", a.Entry)
	}
	return nil
}

// StateDigest returns the canonical digest of the data state. The
// digest is memoized: repeated calls between mutations cost a mutex
// acquisition, not a rehash of the whole state.
func (a *Agent) StateDigest() canon.Digest {
	a.digMu.Lock()
	defer a.digMu.Unlock()
	if !a.digValid {
		a.dig = canon.HashState(a.State)
		a.digValid = true
	}
	return a.dig
}

// InvalidateStateDigest drops the memoized state digest. Call it after
// mutating State directly; the SetVar/SetState/MutateState write paths
// call it themselves.
func (a *Agent) InvalidateStateDigest() {
	a.digMu.Lock()
	a.digValid = false
	a.digMu.Unlock()
}

// seedStateDigest installs a digest computed from the wire encoding.
func (a *Agent) seedStateDigest(d canon.Digest) {
	a.digMu.Lock()
	a.dig = d
	a.digValid = true
	a.digMu.Unlock()
}

// SetVar binds one state variable and invalidates the digest cache.
func (a *Agent) SetVar(name string, v value.Value) {
	if a.State == nil {
		a.State = value.State{}
	}
	a.State[name] = v
	a.InvalidateStateDigest()
}

// SetState replaces the whole data state and invalidates the digest
// cache.
func (a *Agent) SetState(st value.State) {
	a.State = st
	a.InvalidateStateDigest()
}

// MutateState exposes the state for in-place mutation and invalidates
// the digest cache afterwards, keeping cache coherence in one place for
// callers that need multi-variable updates.
func (a *Agent) MutateState(fn func(value.State)) {
	if a.State == nil {
		a.State = value.State{}
	}
	fn(a.State)
	a.InvalidateStateDigest()
}

// Clone returns a deep copy of the agent (sharing only the immutable
// parsed program).
func (a *Agent) Clone() *Agent {
	out := &Agent{
		ID:         a.ID,
		Owner:      a.Owner,
		Code:       a.Code,
		CodeDigest: a.CodeDigest,
		State:      a.State.Clone(),
		Entry:      a.Entry,
		Hop:        a.Hop,
		Route:      append([]string(nil), a.Route...),
		Baggage:    make(map[string][]byte, len(a.Baggage)),
		prog:       a.prog,
	}
	for k, v := range a.Baggage {
		out.Baggage[k] = append([]byte(nil), v...)
	}
	a.digMu.Lock()
	out.dig, out.digValid = a.dig, a.digValid
	a.digMu.Unlock()
	return out
}

// SetBaggage stores a mechanism payload, replacing any previous value.
func (a *Agent) SetBaggage(mechanism string, payload []byte) {
	if a.Baggage == nil {
		a.Baggage = make(map[string][]byte)
	}
	a.Baggage[mechanism] = append([]byte(nil), payload...)
}

// GetBaggage retrieves a mechanism payload; ok is false if absent.
func (a *Agent) GetBaggage(mechanism string) (payload []byte, ok bool) {
	p, ok := a.Baggage[mechanism]
	return p, ok
}

// ClearBaggage removes a mechanism payload.
func (a *Agent) ClearBaggage(mechanism string) { delete(a.Baggage, mechanism) }

// BaggageKeys returns the mechanism names with attached baggage, sorted.
func (a *Agent) BaggageKeys() []string {
	keys := make([]string, 0, len(a.Baggage))
	for k := range a.Baggage {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Wire layout: one canonical tuple. The agent used to travel as gob;
// migration happens once per hop per agent, and gob's encoder setup
// plus type negotiation dominated the marshalling profile, so the wire
// is now the same length-framed tuple format everything else uses.
//
//	0  format label ("agent-wire")
//	1  ID
//	2  Owner
//	3  Code
//	4  CodeDigest
//	5  canonical state encoding
//	6  Entry
//	7  Hop, 8-byte big-endian
//	8  route length, 8-byte big-endian
//	9  baggage count, 8-byte big-endian
//	10+ route hosts, then (mechanism, payload) baggage pairs in sorted
//	    mechanism order
const agentWireLabel = "agent-wire"

// Marshal serializes the agent for migration. The data state travels in
// canonical encoding so that the bytes a host signs are exactly the
// bytes the next host digests.
func (a *Agent) Marshal() ([]byte, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("agent: refusing to marshal invalid agent: %w", err)
	}
	var hopBuf, routeBuf, bagBuf [8]byte
	binary.BigEndian.PutUint64(hopBuf[:], uint64(a.Hop))
	binary.BigEndian.PutUint64(routeBuf[:], uint64(len(a.Route)))
	binary.BigEndian.PutUint64(bagBuf[:], uint64(len(a.Baggage)))
	fields := make([][]byte, 0, 10+len(a.Route)+2*len(a.Baggage))
	fields = append(fields,
		[]byte(agentWireLabel),
		[]byte(a.ID),
		[]byte(a.Owner),
		[]byte(a.Code),
		a.CodeDigest[:],
		canon.EncodeState(a.State),
		[]byte(a.Entry),
		hopBuf[:],
		routeBuf[:],
		bagBuf[:],
	)
	for _, h := range a.Route {
		fields = append(fields, []byte(h))
	}
	for _, k := range a.BaggageKeys() {
		fields = append(fields, []byte(k), a.Baggage[k])
	}
	return canon.Tuple(fields...), nil
}

// Unmarshal deserializes an agent received from the network and
// validates it.
func Unmarshal(data []byte) (*Agent, error) {
	fields, err := canon.ParseTuple(data)
	if err != nil {
		return nil, fmt.Errorf("agent: decoding: %w", err)
	}
	if len(fields) < 10 || string(fields[0]) != agentWireLabel {
		return nil, fmt.Errorf("agent: decoding: %w", canon.ErrMalformed)
	}
	if len(fields[4]) != len(canon.Digest{}) ||
		len(fields[7]) != 8 || len(fields[8]) != 8 || len(fields[9]) != 8 {
		return nil, fmt.Errorf("agent: decoding: %w", canon.ErrMalformed)
	}
	nRoute := binary.BigEndian.Uint64(fields[8])
	nBag := binary.BigEndian.Uint64(fields[9])
	// Bound each count individually before the arithmetic: the counts
	// are attacker controlled, and an unchecked sum could wrap uint64
	// and admit an encoding whose trailing fields are silently dropped.
	if nRoute > uint64(len(fields)) || nBag > uint64(len(fields)) ||
		uint64(len(fields)) != 10+nRoute+2*nBag {
		return nil, fmt.Errorf("agent: decoding: %w: field count", canon.ErrMalformed)
	}
	st, err := canon.DecodeState(fields[5])
	if err != nil {
		return nil, fmt.Errorf("agent: decoding state: %w", err)
	}
	a := &Agent{
		ID:         string(fields[1]),
		Owner:      string(fields[2]),
		Code:       string(fields[3]),
		CodeDigest: canon.Digest(fields[4]),
		State:      st,
		Entry:      string(fields[6]),
		Hop:        int(binary.BigEndian.Uint64(fields[7])),
		Baggage:    make(map[string][]byte, nBag),
	}
	off := 10
	for i := 0; i < int(nRoute); i++ {
		a.Route = append(a.Route, string(fields[off]))
		off++
	}
	for i := 0; i < int(nBag); i++ {
		// Copy the payload: baggage outlives the wire buffer.
		a.Baggage[string(fields[off])] = append([]byte(nil), fields[off+1]...)
		off += 2
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	// The wire encoding IS the canonical state encoding, so the arrival
	// digest comes from one pass over bytes already in hand — the first
	// StateDigest call on a freshly arrived agent (every mechanism's
	// CheckAfterSession makes one) costs nothing extra.
	a.seedStateDigest(canon.HashBytes(fields[5]))
	return a, nil
}

// SessionBinding returns the canonical bytes that protocol signatures
// over a session's states bind to: agent identity, code digest, hop
// index, and the given role label. Including the role prevents an
// initial-state signature from being replayed as a resulting-state
// signature and vice versa.
func (a *Agent) SessionBinding(role string, hop int, stateDigest canon.Digest) []byte {
	return a.AppendSessionBinding(nil, role, hop, stateDigest)
}

// AppendSessionBinding appends the session binding to dst and returns
// the extended slice. Hot signing paths pass a pooled buffer
// (canon.GetBuf) so per-signature allocation stays flat.
func (a *Agent) AppendSessionBinding(dst []byte, role string, hop int, stateDigest canon.Digest) []byte {
	var hopBuf [20]byte
	return canon.AppendTuple(dst,
		[]byte("session"),
		[]byte(a.ID),
		a.CodeDigest[:],
		strconv.AppendInt(hopBuf[:0], int64(hop), 10),
		[]byte(role),
		stateDigest[:],
	)
}
