// Package agent defines the mobile agent construct of the paper's
// execution model (§2.1): "a construct consisting of code, data state,
// and execution state", migrating along a sequence of hosts.
//
// The code part is agentlang source (shipped verbatim and identified by
// its digest). The data state is a value.State. The execution state —
// this platform uses weak migration like Mole (§5) — is the name of the
// entry procedure the next host must start, plus the hop counter.
//
// Agents additionally carry "baggage": opaque per-mechanism payloads
// (signed reference states, input logs, trace commitments) that
// protection mechanisms attach and consume. Baggage travels inside the
// data part of the agent "as this part is transported automatically"
// (§5).
package agent

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"repro/internal/agentlang"
	"repro/internal/canon"
	"repro/internal/value"
)

// Common validation errors.
var (
	ErrNoCode     = errors.New("agent: empty code")
	ErrNoEntry    = errors.New("agent: empty entry procedure")
	ErrBadBaggage = errors.New("agent: malformed baggage")
)

// Agent is a mobile agent between (or during) execution sessions.
type Agent struct {
	// ID uniquely names this agent instance.
	ID string
	// Owner is the principal the agent acts for; the owner's home host
	// is usually the first and last stop of the itinerary.
	Owner string
	// Code is the agentlang source. It is immutable for the lifetime of
	// the agent; CodeDigest pins it.
	Code string
	// CodeDigest is the digest of Code, fixed at creation. A host that
	// receives an agent whose code does not match the digest rejects it.
	CodeDigest canon.Digest
	// State is the agent's data state — the "variable parts" that
	// reference states are defined over.
	State value.State
	// Entry is the execution state under weak migration: the procedure
	// the next execution session starts with.
	Entry string
	// Hop counts completed execution sessions, starting at 0 before the
	// first session. It parameterizes signatures so protocol messages
	// from different sessions can never be confused.
	Hop int
	// Route records the hosts visited so far, in order. Mechanisms that
	// check after the task use it to identify whom to blame (§3.5:
	// "the route, i.e. the list of visited hosts has to be stored").
	Route []string
	// Baggage holds per-mechanism opaque payloads, keyed by mechanism
	// name.
	Baggage map[string][]byte

	// prog caches the parsed program; not serialized.
	prog *agentlang.Program
}

// New creates an agent with the given identity and code, validating
// that the code parses and the entry procedure exists.
func New(id, owner, code, entry string) (*Agent, error) {
	if code == "" {
		return nil, ErrNoCode
	}
	if entry == "" {
		return nil, ErrNoEntry
	}
	prog, err := agentlang.Parse(code)
	if err != nil {
		return nil, fmt.Errorf("agent: parsing code: %w", err)
	}
	if !prog.HasProc(entry) {
		return nil, fmt.Errorf("agent: entry procedure %q not in code", entry)
	}
	return &Agent{
		ID:         id,
		Owner:      owner,
		Code:       code,
		CodeDigest: canon.HashBytes([]byte(code)),
		State:      value.State{},
		Entry:      entry,
		Baggage:    make(map[string][]byte),
		prog:       prog,
	}, nil
}

// Program returns the parsed code, parsing and caching on first use.
func (a *Agent) Program() (*agentlang.Program, error) {
	if a.prog != nil {
		return a.prog, nil
	}
	prog, err := agentlang.Parse(a.Code)
	if err != nil {
		return nil, fmt.Errorf("agent: parsing code: %w", err)
	}
	a.prog = prog
	return prog, nil
}

// Validate checks internal consistency: code digest, parsability, and
// entry existence. Hosts call it on every arriving agent.
func (a *Agent) Validate() error {
	if a.Code == "" {
		return ErrNoCode
	}
	if a.Entry == "" {
		return ErrNoEntry
	}
	if canon.HashBytes([]byte(a.Code)) != a.CodeDigest {
		return errors.New("agent: code does not match code digest")
	}
	prog, err := a.Program()
	if err != nil {
		return err
	}
	if !prog.HasProc(a.Entry) {
		return fmt.Errorf("agent: entry procedure %q not in code", a.Entry)
	}
	return nil
}

// StateDigest returns the canonical digest of the data state.
func (a *Agent) StateDigest() canon.Digest { return canon.HashState(a.State) }

// Clone returns a deep copy of the agent (sharing only the immutable
// parsed program).
func (a *Agent) Clone() *Agent {
	out := &Agent{
		ID:         a.ID,
		Owner:      a.Owner,
		Code:       a.Code,
		CodeDigest: a.CodeDigest,
		State:      a.State.Clone(),
		Entry:      a.Entry,
		Hop:        a.Hop,
		Route:      append([]string(nil), a.Route...),
		Baggage:    make(map[string][]byte, len(a.Baggage)),
		prog:       a.prog,
	}
	for k, v := range a.Baggage {
		out.Baggage[k] = append([]byte(nil), v...)
	}
	return out
}

// SetBaggage stores a mechanism payload, replacing any previous value.
func (a *Agent) SetBaggage(mechanism string, payload []byte) {
	if a.Baggage == nil {
		a.Baggage = make(map[string][]byte)
	}
	a.Baggage[mechanism] = append([]byte(nil), payload...)
}

// GetBaggage retrieves a mechanism payload; ok is false if absent.
func (a *Agent) GetBaggage(mechanism string) (payload []byte, ok bool) {
	p, ok := a.Baggage[mechanism]
	return p, ok
}

// ClearBaggage removes a mechanism payload.
func (a *Agent) ClearBaggage(mechanism string) { delete(a.Baggage, mechanism) }

// BaggageKeys returns the mechanism names with attached baggage, sorted.
func (a *Agent) BaggageKeys() []string {
	keys := make([]string, 0, len(a.Baggage))
	for k := range a.Baggage {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// wireAgent is the gob wire representation.
type wireAgent struct {
	ID         string
	Owner      string
	Code       string
	CodeDigest canon.Digest
	StateEnc   []byte // canonical state encoding
	Entry      string
	Hop        int
	Route      []string
	Baggage    map[string][]byte
}

// Marshal serializes the agent for migration. The data state travels in
// canonical encoding so that the bytes a host signs are exactly the
// bytes the next host digests.
func (a *Agent) Marshal() ([]byte, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("agent: refusing to marshal invalid agent: %w", err)
	}
	w := wireAgent{
		ID:         a.ID,
		Owner:      a.Owner,
		Code:       a.Code,
		CodeDigest: a.CodeDigest,
		StateEnc:   canon.EncodeState(a.State),
		Entry:      a.Entry,
		Hop:        a.Hop,
		Route:      a.Route,
		Baggage:    a.Baggage,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("agent: encoding: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes an agent received from the network and
// validates it.
func Unmarshal(data []byte) (*Agent, error) {
	var w wireAgent
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("agent: decoding: %w", err)
	}
	st, err := canon.DecodeState(w.StateEnc)
	if err != nil {
		return nil, fmt.Errorf("agent: decoding state: %w", err)
	}
	a := &Agent{
		ID:         w.ID,
		Owner:      w.Owner,
		Code:       w.Code,
		CodeDigest: w.CodeDigest,
		State:      st,
		Entry:      w.Entry,
		Hop:        w.Hop,
		Route:      w.Route,
		Baggage:    w.Baggage,
	}
	if a.Baggage == nil {
		a.Baggage = make(map[string][]byte)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// SessionBinding returns the canonical bytes that protocol signatures
// over a session's states bind to: agent identity, code digest, hop
// index, and the given role label. Including the role prevents an
// initial-state signature from being replayed as a resulting-state
// signature and vice versa.
func (a *Agent) SessionBinding(role string, hop int, stateDigest canon.Digest) []byte {
	return canon.Tuple(
		[]byte("session"),
		[]byte(a.ID),
		a.CodeDigest[:],
		[]byte(fmt.Sprintf("%d", hop)),
		[]byte(role),
		stateDigest[:],
	)
}
