package agent

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/value"
)

const testCode = `
proc main() {
    sum = sum([1, 2, 3])
    migrate("next", "resume")
}
proc resume() {
    done()
}`

func newTestAgent(t *testing.T) *Agent {
	t.Helper()
	a, err := New("agent-1", "alice", testCode, "main")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New("a", "o", "", "main"); !errors.Is(err, ErrNoCode) {
		t.Errorf("empty code: err = %v", err)
	}
	if _, err := New("a", "o", testCode, ""); !errors.Is(err, ErrNoEntry) {
		t.Errorf("empty entry: err = %v", err)
	}
	if _, err := New("a", "o", "not a program", "main"); err == nil {
		t.Error("unparsable code accepted")
	}
	if _, err := New("a", "o", testCode, "nothere"); err == nil {
		t.Error("missing entry proc accepted")
	}
}

func TestProgramCached(t *testing.T) {
	a := newTestAgent(t)
	p1, err := a.Program()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Program() reparsed instead of caching")
	}
}

func TestValidateDetectsCodeSwap(t *testing.T) {
	a := newTestAgent(t)
	if err := a.Validate(); err != nil {
		t.Fatalf("fresh agent invalid: %v", err)
	}
	// A malicious host swaps the code but keeps the digest.
	a.Code = `proc main() { stolen = 1 }`
	a.prog = nil
	if err := a.Validate(); err == nil {
		t.Error("code swap not detected")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	a := newTestAgent(t)
	a.State["money"] = value.Int(500)
	a.State["offers"] = value.List(value.Str("x"))
	a.Hop = 2
	a.Route = []string{"home", "shop1"}
	a.SetBaggage("refproto", []byte{1, 2, 3})

	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != a.ID || b.Owner != a.Owner || b.Entry != a.Entry || b.Hop != a.Hop {
		t.Errorf("metadata changed in round trip: %+v", b)
	}
	if !b.State.Equal(a.State) {
		t.Errorf("state changed: %v", a.State.Diff(b.State))
	}
	if len(b.Route) != 2 || b.Route[1] != "shop1" {
		t.Errorf("route changed: %v", b.Route)
	}
	if p, ok := b.GetBaggage("refproto"); !ok || len(p) != 3 {
		t.Errorf("baggage lost: %v %v", p, ok)
	}
	if b.StateDigest() != a.StateDigest() {
		t.Error("state digest changed across wire")
	}
}

func TestUnmarshalRejectsTamperedCode(t *testing.T) {
	a := newTestAgent(t)
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the code region.
	idx := strings.Index(string(data), "sum")
	if idx < 0 {
		t.Fatal("code not found in wire form")
	}
	data[idx] = 'X'
	if _, err := Unmarshal(data); err == nil {
		t.Error("tampered wire agent accepted")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestMarshalRefusesInvalid(t *testing.T) {
	a := newTestAgent(t)
	a.Code = "broken {"
	a.prog = nil
	a.CodeDigest = [32]byte{}
	if _, err := a.Marshal(); err == nil {
		t.Error("invalid agent marshaled")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := newTestAgent(t)
	a.State["xs"] = value.List(value.Int(1))
	a.Route = []string{"h1"}
	a.SetBaggage("m", []byte{9})

	c := a.Clone()
	c.State["xs"].List[0] = value.Int(99)
	c.Route[0] = "evil"
	c.Baggage["m"][0] = 42
	c.Hop = 7

	if a.State["xs"].List[0].Int != 1 {
		t.Error("clone shares state storage")
	}
	if a.Route[0] != "h1" {
		t.Error("clone shares route storage")
	}
	if a.Baggage["m"][0] != 9 {
		t.Error("clone shares baggage storage")
	}
	if a.Hop != 0 {
		t.Error("hop leaked")
	}
}

func TestBaggageOperations(t *testing.T) {
	a := newTestAgent(t)
	buf := []byte{1}
	a.SetBaggage("vigna", buf)
	buf[0] = 2
	if p, _ := a.GetBaggage("vigna"); p[0] != 1 {
		t.Error("SetBaggage did not copy payload")
	}
	a.SetBaggage("appraisal", []byte{3})
	keys := a.BaggageKeys()
	if len(keys) != 2 || keys[0] != "appraisal" || keys[1] != "vigna" {
		t.Errorf("BaggageKeys = %v", keys)
	}
	a.ClearBaggage("vigna")
	if _, ok := a.GetBaggage("vigna"); ok {
		t.Error("ClearBaggage did not remove")
	}
	if _, ok := a.GetBaggage("never"); ok {
		t.Error("GetBaggage invents payloads")
	}
}

func TestSessionBindingDistinguishesRoles(t *testing.T) {
	a := newTestAgent(t)
	d := a.StateDigest()
	tests := map[string][]byte{
		"initial/0":   a.SessionBinding("initial", 0, d),
		"resulting/0": a.SessionBinding("resulting", 0, d),
		"initial/1":   a.SessionBinding("initial", 1, d),
	}
	seen := map[string]string{}
	for name, b := range tests {
		if prev, dup := seen[string(b)]; dup {
			t.Errorf("bindings %s and %s collide", prev, name)
		}
		seen[string(b)] = name
	}
}

func TestSessionBindingDependsOnState(t *testing.T) {
	a := newTestAgent(t)
	d1 := a.StateDigest()
	a.SetVar("x", value.Int(1))
	d2 := a.StateDigest()
	if string(a.SessionBinding("initial", 0, d1)) == string(a.SessionBinding("initial", 0, d2)) {
		t.Error("binding ignores state digest")
	}
}
