package agent

import (
	"testing"

	"repro/internal/canon"
	"repro/internal/value"
)

// TestStateDigestInvalidation drives every Agent-level state write path
// and asserts the memoized digest tracks the state exactly: stale
// digests would let a host sign a state it no longer carries.
func TestStateDigestInvalidation(t *testing.T) {
	a := newTestAgent(t)

	check := func(step string) {
		t.Helper()
		if got, want := a.StateDigest(), canon.HashState(a.State); got != want {
			t.Fatalf("%s: cached digest %s != recomputed %s", step, got, want)
		}
	}
	mustChange := func(step string, prev canon.Digest) canon.Digest {
		t.Helper()
		check(step)
		d := a.StateDigest()
		if d == prev {
			t.Fatalf("%s: digest did not change", step)
		}
		return d
	}

	d := a.StateDigest()
	if a.StateDigest() != d {
		t.Fatal("digest not stable without mutation")
	}

	a.SetVar("x", value.Int(1))
	d = mustChange("SetVar", d)

	a.SetVar("x", value.List(value.Int(1)))
	d = mustChange("SetVar overwrite", d)

	a.MutateState(func(st value.State) {
		st["y"] = value.Str("hello")
		st["x"] = value.Int(2)
	})
	d = mustChange("MutateState", d)

	a.SetState(value.State{"z": value.Bool(true)})
	d = mustChange("SetState", d)

	// Direct Go-level mutation followed by explicit invalidation — the
	// documented escape hatch.
	a.State["w"] = value.Int(9)
	a.InvalidateStateDigest()
	d = mustChange("InvalidateStateDigest", d)

	// A clone carries the cache but stays coherent on its own writes.
	c := a.Clone()
	if c.StateDigest() != d {
		t.Fatal("clone digest differs from source")
	}
	c.SetVar("w", value.Int(10))
	if c.StateDigest() == d {
		t.Fatal("clone write did not change its digest")
	}
	if a.StateDigest() != d {
		t.Fatal("clone write leaked into source digest")
	}
}

// TestUnmarshalRejectsForgedCounts: the wire counts are attacker
// controlled; an overflowing sum must not let an encoding decode with
// trailing fields silently dropped.
func TestUnmarshalRejectsForgedCounts(t *testing.T) {
	a := newTestAgent(t)
	a.SetBaggage("mech", []byte("payload"))
	wire, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fields, err := canon.ParseTuple(wire)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the baggage count with 2^63+1: 10 + nRoute + 2*nBag
	// wraps back to the true field count in uint64 arithmetic.
	forged := append([][]byte(nil), fields...)
	forged[9] = []byte{0x80, 0, 0, 0, 0, 0, 0, 1}
	if _, err := Unmarshal(canon.Tuple(forged...)); err == nil {
		t.Fatal("forged baggage count accepted")
	}
}

// TestUnmarshalSeedsDigest verifies the arrival fast path: the digest
// seeded from the wire encoding must equal a from-scratch rehash.
func TestUnmarshalSeedsDigest(t *testing.T) {
	a := newTestAgent(t)
	a.SetVar("money", value.Int(500))
	a.SetVar("offers", value.List(value.Str("x"), value.Map(map[string]value.Value{"p": value.Int(3)})))
	wire, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.StateDigest(), canon.HashState(b.State); got != want {
		t.Fatalf("seeded digest %s != recomputed %s", got, want)
	}
	if b.StateDigest() != a.StateDigest() {
		t.Fatal("digest changed across marshal round-trip")
	}
}
