// Package doccheck enforces the repository's godoc contract: every
// internal package carries a package comment and every exported symbol
// a doc comment. It is a test, not a linter binary, so the gate runs
// wherever `go test ./...` runs — locally and in every CI job — with
// no tool installation.
package doccheck

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// specDocs maps each name declared in a grouped const/var declaration
// to whether its own spec carries a doc or line comment (a group-level
// doc comment is checked separately).
func specDocs(v *doc.Value) map[string]bool {
	out := make(map[string]bool)
	for _, spec := range v.Decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		has := vs.Doc.Text() != "" || vs.Comment.Text() != ""
		for _, n := range vs.Names {
			out[n.Name] = has
		}
	}
	return out
}

// TestExportedSymbolsDocumented walks every internal package (test
// files excluded) and fails on any exported symbol without a doc
// comment — the enforcement half of the godoc pass over shardstore,
// policy, core, and the rest of the tree.
func TestExportedSymbolsDocumented(t *testing.T) {
	root := "../.."
	var dirs []string
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for name, p := range pkgs {
			d := doc.New(p, dir, 0)
			if d.Doc == "" {
				t.Errorf("%s: package %s has no package comment", dir, name)
			}
			check := func(kind, symbol string, documented bool) {
				base := symbol
				if i := strings.LastIndex(symbol, "."); i >= 0 {
					base = symbol[i+1:]
				}
				if !documented && ast.IsExported(base) {
					t.Errorf("%s: %s %s is undocumented", dir, kind, symbol)
				}
			}
			values := func(kind string, vs []*doc.Value) {
				for _, v := range vs {
					perSpec := specDocs(v)
					for _, n := range v.Names {
						check(kind, n, v.Doc != "" || perSpec[n])
					}
				}
			}
			values("const", d.Consts)
			values("var", d.Vars)
			for _, f := range d.Funcs {
				check("func", f.Name, f.Doc != "")
			}
			for _, ty := range d.Types {
				check("type", ty.Name, ty.Doc != "")
				for _, f := range ty.Funcs {
					check("func", f.Name, f.Doc != "")
				}
				for _, m := range ty.Methods {
					check("method", ty.Name+"."+m.Name, m.Doc != "")
				}
				values("const", ty.Consts)
				values("var", ty.Vars)
			}
		}
	}
}
